"""Tabular views: the quality-measure table (Fig. 1) and the FCP palette (Fig. 6)."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.patterns.registry import PatternRegistry
from repro.quality.framework import MeasureRegistry, QualityCharacteristic


def measures_table(registry: MeasureRegistry) -> list[dict[str, str]]:
    """Rows of the Fig. 1-style table: characteristic and measure description."""
    rows: list[dict[str, str]] = []
    for characteristic in registry.characteristics():
        for measure in registry.for_characteristic(characteristic):
            rows.append(
                {
                    "characteristic": characteristic.label,
                    "measure": measure.description or measure.name,
                    "name": measure.name,
                    "source": "trace" if measure.requires_trace else "static structure",
                }
            )
    return rows


def palette_table(palette: PatternRegistry) -> list[dict[str, str]]:
    """Rows of the Fig. 6 table: FCP and related quality attribute."""
    return palette.palette_table()


def render_table(rows: Sequence[Mapping[str, object]], columns: Sequence[str] | None = None) -> str:
    """Render a list of mappings as a fixed-width ASCII table."""
    if not rows:
        return "(empty table)\n"
    selected = list(columns) if columns else list(rows[0].keys())
    widths = {column: len(column) for column in selected}
    for row in rows:
        for column in selected:
            widths[column] = max(widths[column], len(str(row.get(column, ""))))
    header = " | ".join(column.ljust(widths[column]) for column in selected)
    separator = "-+-".join("-" * widths[column] for column in selected)
    lines = [header, separator]
    for row in rows:
        lines.append(
            " | ".join(str(row.get(column, "")).ljust(widths[column]) for column in selected)
        )
    return "\n".join(lines) + "\n"
