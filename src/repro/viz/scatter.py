"""The multidimensional scatter-plot of alternative flows (Fig. 4).

The scatter plot places every presented alternative in a multidimensional
space of quality characteristics (the paper's example axes are
performance, data quality and reliability) and only shows the Pareto
frontier.  This module builds the underlying data records, renders a
two-dimensional ASCII projection for terminal inspection, and exports the
full data as CSV for external plotting.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Sequence

from repro.core.alternatives import AlternativeFlow
from repro.core.planner import PlanningResult
from repro.quality.framework import QualityCharacteristic


@dataclass(frozen=True)
class ScatterPoint:
    """One point of the Fig. 4 scatter plot."""

    label: str
    scores: tuple[float, ...]
    on_skyline: bool
    patterns: tuple[str, ...]

    def coordinate(self, index: int) -> float:
        """Score on the ``index``-th examined characteristic."""
        return self.scores[index]


def build_scatter_data(result: PlanningResult) -> list[ScatterPoint]:
    """Build the scatter points (one per presented alternative) of a planning run."""
    characteristics = result.characteristics
    skyline = set(result.skyline_indices)
    points: list[ScatterPoint] = []
    for index, alternative in enumerate(result.alternatives):
        if alternative.profile is None:
            continue
        points.append(
            ScatterPoint(
                label=alternative.label or f"ETL Flow {index + 1}",
                scores=alternative.profile.as_vector(characteristics),
                on_skyline=index in skyline,
                patterns=alternative.pattern_names,
            )
        )
    return points


def render_ascii_scatter(
    points: Sequence[ScatterPoint],
    characteristics: Sequence[QualityCharacteristic],
    x_axis: int = 0,
    y_axis: int = 1,
    width: int = 64,
    height: int = 20,
    skyline_only: bool = False,
) -> str:
    """Render a 2-D ASCII projection of the scatter plot.

    Skyline points are drawn with ``*``, dominated points with ``.``; the
    axes are labelled with the examined characteristics.
    """
    if not points:
        return "(no alternative flows to plot)\n"
    if width < 10 or height < 5:
        raise ValueError("the plot needs at least a 10x5 character canvas")
    selected = [p for p in points if p.on_skyline] if skyline_only else list(points)
    if not selected:
        selected = list(points)

    xs = [p.coordinate(x_axis) for p in selected]
    ys = [p.coordinate(y_axis) for p in selected]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for point in selected:
        col = int((point.coordinate(x_axis) - x_min) / x_span * (width - 1))
        row = int((point.coordinate(y_axis) - y_min) / y_span * (height - 1))
        marker = "*" if point.on_skyline else "."
        canvas[height - 1 - row][col] = marker

    x_label = characteristics[x_axis].label
    y_label = characteristics[y_axis].label
    lines = [f"{y_label} (vertical) vs {x_label} (horizontal)   [* = skyline, . = dominated]"]
    lines.append(f"{y_max:8.2f} +" + "-" * width + "+")
    for row in canvas:
        lines.append(" " * 9 + "|" + "".join(row) + "|")
    lines.append(f"{y_min:8.2f} +" + "-" * width + "+")
    lines.append(" " * 10 + f"{x_min:<10.2f}" + " " * max(0, width - 20) + f"{x_max:>10.2f}")
    return "\n".join(lines) + "\n"


def scatter_to_csv(
    points: Sequence[ScatterPoint],
    characteristics: Sequence[QualityCharacteristic],
) -> str:
    """Export the scatter data as CSV (one row per alternative)."""
    buffer = io.StringIO()
    header = ["label", "on_skyline", "patterns"] + [c.value for c in characteristics]
    buffer.write(",".join(header) + "\n")
    for point in points:
        row = [
            point.label,
            "1" if point.on_skyline else "0",
            "+".join(point.patterns) or "none",
        ] + [f"{score:.4f}" for score in point.scores]
        buffer.write(",".join(row) + "\n")
    return buffer.getvalue()
