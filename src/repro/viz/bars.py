"""The relative-change bar graph and its drill-down (Fig. 5).

For a selected alternative flow, the tool shows one bar per quality
characteristic giving the relative change of its composite measure against
the initial flow; clicking a bar expands the composite measure into its
detailed metrics.  This module renders both views as ASCII bar charts.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.comparison import FlowComparison, MeasureChange
from repro.quality.framework import QualityCharacteristic


def build_bar_data(comparison: FlowComparison) -> list[dict[str, object]]:
    """The bar-chart records: one row per characteristic with its relative change."""
    rows: list[dict[str, object]] = []
    for characteristic, change in comparison.characteristic_changes.items():
        rows.append(
            {
                "characteristic": characteristic.value,
                "relative_change": change,
                "detail_measures": [m.measure for m in comparison.expand(characteristic)],
            }
        )
    return rows


def _bar(value: float, max_abs: float, width: int) -> str:
    """Render one signed horizontal bar of at most ``width`` characters per side."""
    if max_abs <= 0:
        filled = 0
    else:
        filled = int(round(abs(value) / max_abs * width))
    filled = min(filled, width)
    if value >= 0:
        return " " * width + "|" + "#" * filled + " " * (width - filled)
    return " " * (width - filled) + "#" * filled + "|" + " " * width


def render_bar_chart(comparison: FlowComparison, width: int = 25) -> str:
    """ASCII rendering of the Fig. 5 composite bar chart."""
    changes = comparison.characteristic_changes
    if not changes:
        return "(no characteristics to compare)\n"
    max_abs = max(abs(v) for v in changes.values()) or 1.0
    lines = [
        f"Relative change of measures: {comparison.flow_name} vs {comparison.baseline_name}",
        f"{'characteristic':<18} {'-':>{width}}0{'+':<{width}}   change",
    ]
    for characteristic, change in changes.items():
        bar = _bar(change, max_abs, width)
        lines.append(f"{characteristic.label:<18} {bar} {change:+7.1%}")
    lines.append("(click a bar = render_drilldown(comparison, characteristic))")
    return "\n".join(lines) + "\n"


def render_drilldown(
    comparison: FlowComparison,
    characteristic: QualityCharacteristic,
    width: int = 25,
) -> str:
    """ASCII rendering of the expanded (detailed) measures of one characteristic."""
    details: Sequence[MeasureChange] = comparison.expand(characteristic)
    if not details:
        return f"(no detailed measures recorded for {characteristic.label})\n"
    max_abs = max(abs(d.relative_improvement) for d in details) or 1.0
    lines = [f"{characteristic.label}: detailed measures ({comparison.flow_name})"]
    for detail in details:
        bar = _bar(detail.relative_improvement, max_abs, width)
        lines.append(
            f"{detail.measure:<28} {bar} {detail.relative_improvement:+7.1%}  "
            f"({detail.baseline_value:.3f} -> {detail.new_value:.3f} {detail.unit})"
        )
    return "\n".join(lines) + "\n"
