"""Per-session text reports.

Combines the scatter plot, the skyline listing and the measure comparison
of the best alternatives into one plain-text report, which is what the
examples print and what EXPERIMENTS.md quotes.
"""

from __future__ import annotations

from repro.core.planner import PlanningResult
from repro.core.session import RedesignSession
from repro.viz.bars import render_bar_chart
from repro.viz.scatter import build_scatter_data, render_ascii_scatter


def planning_report(result: PlanningResult, max_listed: int = 10) -> str:
    """A text report of one planning run: summary, skyline and scatter plot."""
    lines = ["=" * 72]
    lines.append(f"Planning run on initial flow: {result.initial_flow.name}")
    lines.append(
        f"  operations={result.initial_flow.node_count}  "
        f"transitions={result.initial_flow.edge_count}"
    )
    lines.append(
        f"  alternatives generated: {len(result.alternatives)}   "
        f"skyline size: {len(result.skyline_indices)}   "
        f"discarded by constraints: {result.discarded_by_constraints}"
    )
    lines.append("")
    lines.append("Skyline (Pareto-optimal alternatives):")
    for alternative in result.skyline[:max_listed]:
        assert alternative.profile is not None
        scores = ", ".join(
            f"{characteristic.label}={alternative.profile.score(characteristic):.1f}"
            for characteristic in result.characteristics
        )
        lines.append(f"  - {alternative.label}: {alternative.describe()}   [{scores}]")
    if len(result.skyline) > max_listed:
        lines.append(f"  ... and {len(result.skyline) - max_listed} more")
    lines.append("")
    points = build_scatter_data(result)
    lines.append(render_ascii_scatter(points, result.characteristics))
    if result.skyline:
        best = result.skyline[0]
        lines.append(render_bar_chart(result.comparison(best)))
    return "\n".join(lines)


def session_report(session: RedesignSession) -> str:
    """A text report of a whole redesign session (one block per iteration)."""
    lines = [f"Redesign session on flow {session.initial_flow.name!r}"]
    lines.append(f"Iterations completed: {session.iteration_count}")
    for iteration in session.iterations:
        lines.append("")
        lines.append(f"--- Iteration {iteration.index} ---")
        lines.append(planning_report(iteration.result, max_listed=5))
        if iteration.selected is not None:
            lines.append(f"Selected: {iteration.selected.label}  ({iteration.selected.describe()})")
    return "\n".join(lines) + "\n"
