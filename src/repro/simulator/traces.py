"""Trace records produced by the ETL runtime simulator.

A :class:`FlowTrace` captures one simulated execution of an ETL flow: per
operation row counts, processing time, data-quality defect counts, and the
failure/recovery events of the run.  A :class:`TraceArchive` aggregates
several runs of the same flow (the simulator's stand-in for "historical
traces") and offers the summary statistics the trace-based quality
measures need.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.simulator.failures import FailureEvent


@dataclass
class OperationTrace:
    """Runtime record of one operation within one simulated execution.

    Attributes
    ----------
    op_id, kind:
        Identity of the traced operation.
    rows_in / rows_out:
        Number of tuples consumed and emitted.
    time_ms:
        Wall-clock processing time attributed to the operation, after
        accounting for parallelism and resource speed.
    null_rows, duplicate_rows, error_rows:
        Data-quality defect counts present in the operation's *output*.
    memory_kb:
        Peak buffered memory attributed to the operation.
    parallelism:
        Effective degree of parallelism used.
    """

    op_id: str
    kind: str
    rows_in: float = 0.0
    rows_out: float = 0.0
    time_ms: float = 0.0
    null_rows: float = 0.0
    duplicate_rows: float = 0.0
    error_rows: float = 0.0
    memory_kb: float = 0.0
    parallelism: int = 1

    @property
    def selectivity(self) -> float:
        """Observed output/input row ratio of the operation."""
        if self.rows_in <= 0:
            return 1.0
        return self.rows_out / self.rows_in


@dataclass
class FlowTrace:
    """Record of one simulated end-to-end execution of an ETL flow."""

    flow_name: str
    operations: dict[str, OperationTrace] = field(default_factory=dict)
    cycle_time_ms: float = 0.0
    critical_path_ms: float = 0.0
    rows_loaded: float = 0.0
    rows_extracted: float = 0.0
    failures: list[FailureEvent] = field(default_factory=list)
    recovered_failures: int = 0
    lost_work_ms: float = 0.0
    freshness_lag_minutes: float = 0.0
    update_frequency_per_day: float = 24.0
    monetary_cost: float = 0.0
    succeeded: bool = True

    def operation(self, op_id: str) -> OperationTrace:
        """The trace of one operation (raises ``KeyError`` if absent)."""
        return self.operations[op_id]

    @property
    def total_error_rows(self) -> float:
        """Erroneous rows present in the data loaded by the sink operations."""
        sinks = [t for t in self.operations.values() if t.kind.startswith("load_")]
        if not sinks:
            return 0.0
        return sum(t.error_rows for t in sinks)

    @property
    def total_null_rows(self) -> float:
        """Rows with NULL defects present in the loaded data."""
        sinks = [t for t in self.operations.values() if t.kind.startswith("load_")]
        if not sinks:
            return 0.0
        return sum(t.null_rows for t in sinks)

    @property
    def total_duplicate_rows(self) -> float:
        """Duplicate rows present in the loaded data."""
        sinks = [t for t in self.operations.values() if t.kind.startswith("load_")]
        if not sinks:
            return 0.0
        return sum(t.duplicate_rows for t in sinks)

    @property
    def average_latency_per_tuple_ms(self) -> float:
        """Average processing latency per extracted tuple (Fig. 1 measure)."""
        if self.rows_extracted <= 0:
            return 0.0
        return self.cycle_time_ms / self.rows_extracted

    @property
    def failure_count(self) -> int:
        """Number of failure events encountered during the run."""
        return len(self.failures)


class TraceArchive:
    """Aggregate view over several simulated executions of the same flow.

    This plays the role of the "historical traces capturing the runtime
    behaviour of ETL components" that the paper's trace-based measures are
    computed from.
    """

    def __init__(self, flow_name: str, traces: Iterable[FlowTrace] = ()) -> None:
        self.flow_name = flow_name
        self._traces: list[FlowTrace] = list(traces)

    def add(self, trace: FlowTrace) -> None:
        """Append one execution's trace to the archive."""
        if trace.flow_name != self.flow_name:
            raise ValueError(
                f"trace of flow {trace.flow_name!r} cannot join archive of {self.flow_name!r}"
            )
        self._traces.append(trace)

    def __len__(self) -> int:
        return len(self._traces)

    def __iter__(self) -> Iterator[FlowTrace]:
        return iter(self._traces)

    def __getitem__(self, index: int) -> FlowTrace:
        return self._traces[index]

    # -- aggregates -----------------------------------------------------

    def _require_traces(self) -> None:
        if not self._traces:
            raise ValueError("the trace archive is empty")

    def mean_cycle_time_ms(self) -> float:
        """Mean end-to-end cycle time across runs."""
        self._require_traces()
        return statistics.fmean(t.cycle_time_ms for t in self._traces)

    def percentile_cycle_time_ms(self, percentile: float) -> float:
        """Cycle-time percentile (e.g. 95) across runs."""
        self._require_traces()
        if not 0 < percentile <= 100:
            raise ValueError("percentile must lie in (0, 100]")
        ordered = sorted(t.cycle_time_ms for t in self._traces)
        rank = max(0, min(len(ordered) - 1, round(percentile / 100 * (len(ordered) - 1))))
        return ordered[rank]

    def mean_latency_per_tuple_ms(self) -> float:
        """Mean per-tuple latency across runs."""
        self._require_traces()
        return statistics.fmean(t.average_latency_per_tuple_ms for t in self._traces)

    def success_rate(self) -> float:
        """Fraction of runs that completed successfully."""
        self._require_traces()
        return sum(1 for t in self._traces if t.succeeded) / len(self._traces)

    def mean_lost_work_ms(self) -> float:
        """Mean amount of work repeated or lost due to failures."""
        self._require_traces()
        return statistics.fmean(t.lost_work_ms for t in self._traces)

    def mean_rows_loaded(self) -> float:
        """Mean number of rows delivered to the sinks."""
        self._require_traces()
        return statistics.fmean(t.rows_loaded for t in self._traces)

    def mean_defect_rates(self) -> dict[str, float]:
        """Mean null/duplicate/error rates of the loaded data across runs."""
        self._require_traces()
        nulls, dups, errs = [], [], []
        for trace in self._traces:
            loaded = max(trace.rows_loaded, 1.0)
            nulls.append(trace.total_null_rows / loaded)
            dups.append(trace.total_duplicate_rows / loaded)
            errs.append(trace.total_error_rows / loaded)
        return {
            "null_rate": statistics.fmean(nulls),
            "duplicate_rate": statistics.fmean(dups),
            "error_rate": statistics.fmean(errs),
        }

    def mean_monetary_cost(self) -> float:
        """Mean per-execution monetary cost."""
        self._require_traces()
        return statistics.fmean(t.monetary_cost for t in self._traces)

    def mean_freshness_lag_minutes(self) -> float:
        """Mean staleness of the loaded data in minutes."""
        self._require_traces()
        return statistics.fmean(t.freshness_lag_minutes for t in self._traces)

    def mean_update_frequency(self) -> float:
        """Mean source update frequency observed across runs."""
        self._require_traces()
        return statistics.fmean(t.update_frequency_per_day for t in self._traces)

    def operation_time_breakdown(self) -> dict[str, float]:
        """Mean processing time per operation across runs (``op_id -> ms``)."""
        self._require_traces()
        sums: dict[str, float] = {}
        counts: dict[str, int] = {}
        for trace in self._traces:
            for op_id, op_trace in trace.operations.items():
                sums[op_id] = sums.get(op_id, 0.0) + op_trace.time_ms
                counts[op_id] = counts.get(op_id, 0) + 1
        return {op_id: sums[op_id] / counts[op_id] for op_id in sums}

    def summary(self) -> dict[str, float]:
        """A compact numeric summary used by reports and tests."""
        self._require_traces()
        defects = self.mean_defect_rates()
        return {
            "runs": float(len(self._traces)),
            "mean_cycle_time_ms": self.mean_cycle_time_ms(),
            "mean_latency_per_tuple_ms": self.mean_latency_per_tuple_ms(),
            "success_rate": self.success_rate(),
            "mean_lost_work_ms": self.mean_lost_work_ms(),
            "mean_rows_loaded": self.mean_rows_loaded(),
            "mean_monetary_cost": self.mean_monetary_cost(),
            "null_rate": defects["null_rate"],
            "duplicate_rate": defects["duplicate_rate"],
            "error_rate": defects["error_rate"],
        }
