"""Runtime simulator for ETL flows.

The paper's quality measures fall into two families: measures derived from
the static structure of the process model, and measures obtained from the
analysis of historical traces capturing the runtime behaviour of ETL
components.  Real historical traces are not available to this
reproduction, so this package provides the substitute substrate: a
discrete, operator-by-operator simulation of an ETL flow execution over
synthetic data that produces :class:`~repro.simulator.traces.FlowTrace`
records, including failure and recovery behaviour, from which the
trace-based measures are computed.
"""

from repro.simulator.datagen import SourceProfile, SyntheticDataGenerator
from repro.simulator.resources import ResourceModel, ResourceTier
from repro.simulator.traces import FlowTrace, OperationTrace, TraceArchive
from repro.simulator.failures import FailureInjector, FailureEvent
from repro.simulator.engine import SimulationConfig, ETLSimulator, simulate_flow

__all__ = [
    "SourceProfile",
    "SyntheticDataGenerator",
    "ResourceModel",
    "ResourceTier",
    "FlowTrace",
    "OperationTrace",
    "TraceArchive",
    "FailureInjector",
    "FailureEvent",
    "SimulationConfig",
    "ETLSimulator",
    "simulate_flow",
]
