"""Operator-by-operator simulation of ETL flow executions.

The engine walks the flow graph in topological order, propagating row
volumes and data-quality defect counts from the sources to the sinks,
charging per-operation processing time according to the operation cost
model and the resource environment, sampling failures and computing the
recovery cost given the checkpoints present in the flow.  Each execution
yields a :class:`~repro.simulator.traces.FlowTrace`; repeated executions
are collected into a :class:`~repro.simulator.traces.TraceArchive` which
stands in for the historical traces the paper's measures are based on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.etl.graph import ETLGraph
from repro.etl.operations import Operation, OperationKind
from repro.simulator.datagen import SourceProfile, SyntheticDataGenerator
from repro.simulator.failures import FailureInjector
from repro.simulator.resources import ResourceModel, ResourceTier
from repro.simulator.traces import FlowTrace, OperationTrace, TraceArchive

# Kinds that divide their output rows among successors instead of
# replicating the full output on every outgoing edge.
_PARTITIONING_KINDS = frozenset(
    {OperationKind.SPLIT, OperationKind.ROUTER, OperationKind.PARTITION}
)

# Fraction of data errors corrected by a crosscheck against an alternative
# data source (the CrosscheckSources pattern).
_CROSSCHECK_CORRECTION = 0.85

# Per-tuple overhead multipliers applied by process-wide (graph-level)
# configuration patterns.
_ENCRYPTION_OVERHEAD = 1.12
_ACCESS_CONTROL_OVERHEAD = 1.03


@dataclass
class SimulationConfig:
    """Parameters of a simulation campaign.

    Attributes
    ----------
    runs:
        Number of executions to simulate (the size of the synthetic
        "historical trace" archive).
    seed:
        Seed of the random generator; identical seeds yield identical
        archives for identical flows.
    resources:
        Execution environment; overridden by a ``resource_tier`` graph
        annotation when present on the flow.
    volume_jitter:
        Run-to-run variation of the extraction volumes.
    """

    runs: int = 5
    seed: int | None = 7
    resources: ResourceModel = field(default_factory=ResourceModel)
    volume_jitter: float = 0.05


class ETLSimulator:
    """Simulates executions of a single ETL flow."""

    def __init__(self, flow: ETLGraph, config: SimulationConfig | None = None) -> None:
        self.flow = flow
        self.config = config or SimulationConfig()
        self._generator = SyntheticDataGenerator(
            seed=self.config.seed, jitter=self.config.volume_jitter
        )
        self._injector = FailureInjector(flow)
        self._resources = self._resolve_resources()

    def _resolve_resources(self) -> ResourceModel:
        tier = self.flow.annotations.get("resource_tier")
        if tier:
            return ResourceModel.from_tier(ResourceTier(tier) if isinstance(tier, str) else tier)
        return self.config.resources

    # ------------------------------------------------------------------

    def run(self) -> TraceArchive:
        """Simulate ``config.runs`` executions and return the trace archive."""
        archive = TraceArchive(self.flow.name)
        for _ in range(self.config.runs):
            archive.add(self.run_once())
        return archive

    def run_once(self) -> FlowTrace:
        """Simulate a single end-to-end execution of the flow."""
        trace = FlowTrace(flow_name=self.flow.name)
        overhead = self._config_overhead()
        rows_out: dict[str, float] = {}
        defects: dict[str, dict[str, float]] = {}
        times: dict[str, float] = {}
        freshness_lags: list[float] = []
        update_frequencies: list[float] = []

        for op in self.flow.topological_order():
            rows_in, in_defects = self._gather_inputs(op, rows_out, defects)
            if op.kind.is_source:
                sample = self._generator.sample(SourceProfile.from_operation(op))
                rows_in = sample["rows"]
                in_defects = {
                    "null_rows": sample["null_rows"],
                    "duplicate_rows": sample["duplicate_rows"],
                    "error_rows": sample["error_rows"],
                }
                freshness_lags.append(sample["freshness_lag_minutes"])
                update_frequencies.append(sample["update_frequency_per_day"])
                trace.rows_extracted += rows_in
            out_rows, out_defects = self._apply_operation(op, rows_in, in_defects)
            time_ms = self._operation_time(op, rows_in, overhead)
            rows_out[op.op_id] = out_rows
            defects[op.op_id] = out_defects
            times[op.op_id] = time_ms
            trace.operations[op.op_id] = OperationTrace(
                op_id=op.op_id,
                kind=op.kind.value,
                rows_in=rows_in,
                rows_out=out_rows,
                time_ms=time_ms,
                null_rows=out_defects["null_rows"],
                duplicate_rows=out_defects["duplicate_rows"],
                error_rows=out_defects["error_rows"],
                memory_kb=op.properties.memory_per_tuple * rows_in,
                parallelism=self._resources.effective_parallelism(op.parallelism),
            )
            if op.kind.is_sink:
                trace.rows_loaded += out_rows

        critical_path_ms = self._critical_path_time(times)
        total_work_ms = sum(times.values())
        failures = self._sample_failures()
        events = self._injector.recovery_events(failures, times)
        lost_work = sum(event.lost_work_ms for event in events)
        unprotected = [event for event in events if not event.recovered_from]

        trace.failures = events
        trace.recovered_failures = len(events) - len(unprotected)
        trace.lost_work_ms = lost_work
        trace.succeeded = not unprotected
        trace.critical_path_ms = critical_path_ms
        trace.cycle_time_ms = critical_path_ms + lost_work
        trace.freshness_lag_minutes = self._effective_freshness(freshness_lags)
        trace.update_frequency_per_day = (
            min(update_frequencies) if update_frequencies else 24.0
        )
        trace.monetary_cost = self._monetary_cost(total_work_ms + lost_work)
        return trace

    # ------------------------------------------------------------------
    # Row / defect propagation
    # ------------------------------------------------------------------

    def _gather_inputs(
        self,
        op: Operation,
        rows_out: Mapping[str, float],
        defects: Mapping[str, Mapping[str, float]],
    ) -> tuple[float, dict[str, float]]:
        rows_in = 0.0
        in_defects = {"null_rows": 0.0, "duplicate_rows": 0.0, "error_rows": 0.0}
        for pred in self.flow.predecessors(op.op_id):
            produced = rows_out.get(pred.op_id, 0.0)
            pred_defects = defects.get(
                pred.op_id, {"null_rows": 0.0, "duplicate_rows": 0.0, "error_rows": 0.0}
            )
            share = 1.0
            if pred.kind in _PARTITIONING_KINDS:
                out_degree = max(1, self.flow.out_degree(pred.op_id))
                share = 1.0 / out_degree
            rows_in += produced * share
            for key in in_defects:
                in_defects[key] += pred_defects[key] * share
        return rows_in, in_defects

    def _apply_operation(
        self, op: Operation, rows_in: float, in_defects: Mapping[str, float]
    ) -> tuple[float, dict[str, float]]:
        props = op.properties
        nulls = in_defects["null_rows"]
        dups = in_defects["duplicate_rows"]
        errors = in_defects["error_rows"]

        if op.kind.is_source:
            rows_out = rows_in
        elif op.kind is OperationKind.DEDUPLICATE:
            rows_out = max(0.0, rows_in - dups)
            dups = 0.0
            nulls = min(nulls, rows_out)
            errors = min(errors, rows_out)
        elif op.kind is OperationKind.FILTER_NULLS:
            rows_out = max(0.0, rows_in - nulls)
            nulls = 0.0
            dups = min(dups, rows_out)
            errors = min(errors, rows_out)
        elif op.kind is OperationKind.CROSSCHECK:
            rows_out = rows_in * props.selectivity
            errors = errors * (1.0 - _CROSSCHECK_CORRECTION)
        elif op.kind in (OperationKind.VALIDATE, OperationKind.CLEANSE):
            rows_out = rows_in * props.selectivity
            errors = errors * max(0.0, 1.0 - props.selectivity + props.error_rate)
            nulls *= props.selectivity
            dups *= props.selectivity
        else:
            rows_out = rows_in * props.selectivity
            scale = props.selectivity if props.selectivity < 1.0 else 1.0
            nulls *= scale
            dups *= scale
            errors *= scale

        # The operation itself may introduce new defects on its output.
        nulls += rows_out * props.null_rate if not op.kind.is_source else 0.0
        dups += rows_out * props.duplicate_rate if not op.kind.is_source else 0.0
        errors += rows_out * props.error_rate if not op.kind.is_source else 0.0

        out_defects = {
            "null_rows": min(nulls, rows_out) if rows_out else 0.0,
            "duplicate_rows": min(dups, rows_out) if rows_out else 0.0,
            "error_rows": min(errors, rows_out) if rows_out else 0.0,
        }
        if op.kind.is_source:
            out_defects = {
                "null_rows": in_defects["null_rows"],
                "duplicate_rows": in_defects["duplicate_rows"],
                "error_rows": in_defects["error_rows"],
            }
        return rows_out, out_defects

    # ------------------------------------------------------------------
    # Time / cost model
    # ------------------------------------------------------------------

    def _config_overhead(self) -> float:
        overhead = 1.0
        if self.flow.annotations.get("encryption"):
            overhead *= _ENCRYPTION_OVERHEAD
        if self.flow.annotations.get("access_control"):
            overhead *= _ACCESS_CONTROL_OVERHEAD
        return overhead

    def _operation_time(self, op: Operation, rows_in: float, overhead: float) -> float:
        props = op.properties
        parallelism = self._resources.effective_parallelism(op.parallelism)
        variable = props.cost_per_tuple * rows_in / parallelism
        raw = props.fixed_cost + variable
        return self._resources.scale_time(raw * overhead)

    def _critical_path_time(self, times: Mapping[str, float]) -> float:
        # Longest path through the DAG where each node contributes its
        # processing time; computed by dynamic programming in topological
        # order.  This models pipeline branches executing concurrently.
        best: dict[str, float] = {}
        result = 0.0
        for op in self.flow.topological_order():
            preds = self.flow.predecessors(op.op_id)
            upstream = max((best[p.op_id] for p in preds), default=0.0)
            best[op.op_id] = upstream + times.get(op.op_id, 0.0)
            result = max(result, best[op.op_id])
        return result

    def _sample_failures(self) -> list[str]:
        random_values = {
            op.op_id: self._generator.random() for op in self.flow.operations()
        }
        return self._injector.sample_failures(random_values)

    def _effective_freshness(self, source_lags: list[float]) -> float:
        lag = max(source_lags, default=0.0)
        frequency = float(self.flow.annotations.get("schedule_frequency_per_day", 24.0))
        if frequency <= 0:
            frequency = 1.0
        # Half the scheduling period is the expected additional staleness
        # introduced by running the process `frequency` times per day.
        schedule_lag = (24.0 * 60.0 / frequency) / 2.0
        return lag + schedule_lag

    def _monetary_cost(self, total_work_ms: float) -> float:
        infrastructure = self._resources.cost_of(total_work_ms)
        per_operation = sum(op.properties.monetary_cost for op in self.flow.operations())
        frequency = float(self.flow.annotations.get("schedule_frequency_per_day", 24.0))
        frequency_factor = max(frequency, 1.0) / 24.0
        return (infrastructure + per_operation) * frequency_factor


def simulate_flow(
    flow: ETLGraph,
    runs: int = 5,
    seed: int | None = 7,
    resources: ResourceModel | None = None,
) -> TraceArchive:
    """Convenience wrapper: simulate ``runs`` executions of ``flow``."""
    config = SimulationConfig(runs=runs, seed=seed, resources=resources or ResourceModel())
    return ETLSimulator(flow, config).run()
