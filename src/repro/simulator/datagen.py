"""Synthetic data characteristics for ETL sources.

The reproduction has no access to the production data sources the paper's
demo extracts from (TPC-DS / TPC-H refresh streams on real systems), so
source behaviour is modelled statistically: each extraction operation is
described by a :class:`SourceProfile` giving the number of rows it emits
and the data-quality defects (nulls, duplicates, erroneous values,
staleness) present in that data.  The simulator propagates these defect
counts through the flow, which is what the data-quality patterns
(``FilterNullValues``, ``RemoveDuplicateEntries``, ``CrosscheckSources``)
act upon.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.etl.operations import Operation


@dataclass(frozen=True)
class SourceProfile:
    """Statistical description of the data emitted by one source operation.

    Attributes
    ----------
    rows:
        Number of rows extracted per execution.
    null_rate:
        Fraction of rows carrying NULLs in at least one nullable field.
    duplicate_rate:
        Fraction of rows whose key duplicates another row.
    error_rate:
        Fraction of rows carrying an incorrect value (referential breaks,
        bad formats, out-of-range numbers).
    freshness_lag_minutes:
        Average delay between the last source-system update and extraction
        (the "Request time - Time of last update" measure of Fig. 1).
    update_frequency_per_day:
        How often per day the source system refreshes its data.
    """

    rows: int = 1000
    null_rate: float = 0.0
    duplicate_rate: float = 0.0
    error_rate: float = 0.0
    freshness_lag_minutes: float = 0.0
    update_frequency_per_day: float = 24.0

    def __post_init__(self) -> None:
        if self.rows < 0:
            raise ValueError("rows must be non-negative")
        for name in ("null_rate", "duplicate_rate", "error_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {value}")

    @classmethod
    def from_operation(cls, operation: Operation) -> "SourceProfile":
        """Derive a profile from an extraction operation's configuration."""
        props = operation.properties
        return cls(
            rows=int(operation.config.get("rows", 1000)),
            null_rate=props.null_rate,
            duplicate_rate=props.duplicate_rate,
            error_rate=props.error_rate,
            freshness_lag_minutes=props.freshness_lag,
            update_frequency_per_day=props.update_frequency,
        )


class SyntheticDataGenerator:
    """Samples per-execution source volumes and defect counts.

    A generator is seeded so that simulations are reproducible; each call
    to :meth:`sample` yields slightly different volumes (±``jitter``) to
    model run-to-run variation of extraction volumes, which in turn makes
    trace-based measures behave like aggregates over historical runs.
    """

    def __init__(self, seed: int | None = 7, jitter: float = 0.05) -> None:
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must lie in [0, 1)")
        self._rng = np.random.default_rng(seed)
        self.jitter = jitter

    def sample(self, profile: SourceProfile) -> dict[str, float]:
        """Sample one execution's worth of data characteristics for a source.

        Returns a mapping with keys ``rows``, ``null_rows``,
        ``duplicate_rows``, ``error_rows``, ``freshness_lag_minutes`` and
        ``update_frequency_per_day``.
        """
        if profile.rows == 0:
            rows = 0
        else:
            factor = 1.0 + self._rng.uniform(-self.jitter, self.jitter)
            rows = max(1, int(round(profile.rows * factor)))
        return {
            "rows": float(rows),
            "null_rows": float(self._binomial(rows, profile.null_rate)),
            "duplicate_rows": float(self._binomial(rows, profile.duplicate_rate)),
            "error_rows": float(self._binomial(rows, profile.error_rate)),
            "freshness_lag_minutes": profile.freshness_lag_minutes,
            "update_frequency_per_day": profile.update_frequency_per_day,
        }

    def _binomial(self, n: int, p: float) -> int:
        if n <= 0 or p <= 0.0:
            return 0
        if p >= 1.0:
            return n
        return int(self._rng.binomial(n, p))

    def uniform(self, low: float, high: float) -> float:
        """Expose a uniform sample from the generator's stream (failure timing)."""
        return float(self._rng.uniform(low, high))

    def random(self) -> float:
        """A uniform sample in ``[0, 1)``."""
        return float(self._rng.random())
