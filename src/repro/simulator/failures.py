"""Failure injection and checkpoint-based recovery.

The reliability Flow Component Pattern of the paper (``AddCheckpoint``,
Fig. 2b) persists intermediary data at a savepoint so that, when a
downstream operation fails, execution resumes from the savepoint instead
of re-running the whole flow.  The simulator models this by sampling
failures per operation according to each operation's ``failure_rate`` and
charging either the full upstream work (no checkpoint available) or only
the work since the most recent checkpoint as *lost work* that must be
repeated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.etl.graph import ETLGraph
from repro.etl.operations import OperationKind


@dataclass(frozen=True)
class FailureEvent:
    """One failure sampled during a simulated execution.

    Attributes
    ----------
    op_id:
        The operation that failed.
    lost_work_ms:
        Processing time that has to be repeated because of the failure.
    recovered_from:
        Identifier of the checkpoint operation recovery restarted from, or
        an empty string when the whole flow had to be restarted.
    """

    op_id: str
    lost_work_ms: float
    recovered_from: str = ""


class FailureInjector:
    """Samples failures for a flow execution and computes recovery costs."""

    def __init__(self, flow: ETLGraph) -> None:
        self._flow = flow
        self._checkpoints = {
            op.op_id for op in flow.operations_of_kind(OperationKind.CHECKPOINT)
        }

    @property
    def checkpoint_ids(self) -> frozenset[str]:
        """Identifiers of the checkpoint operations present in the flow."""
        return frozenset(self._checkpoints)

    def failure_probability(self, op_id: str) -> float:
        """Per-execution failure probability of one operation."""
        return self._flow.operation(op_id).properties.failure_rate

    def flow_failure_probability(self) -> float:
        """Probability that at least one operation fails during an execution."""
        survival = 1.0
        for op in self._flow.operations():
            survival *= 1.0 - op.properties.failure_rate
        return 1.0 - survival

    def sample_failures(
        self, random_values: Mapping[str, float]
    ) -> list[str]:
        """Return the operations that fail, given pre-drawn uniforms per op.

        ``random_values`` maps ``op_id`` to a uniform sample in ``[0, 1)``;
        an operation fails when its sample falls below its failure rate.
        Accepting the randomness from outside keeps the injector
        deterministic and unit-testable.
        """
        failed = []
        for op in self._flow.operations():
            value = random_values.get(op.op_id, 1.0)
            if value < op.properties.failure_rate:
                failed.append(op.op_id)
        return failed

    def lost_work_for_failure(
        self, failed_op: str, operation_times_ms: Mapping[str, float]
    ) -> FailureEvent:
        """Compute the work lost when ``failed_op`` fails.

        Without a checkpoint upstream of the failed operation, all work
        performed upstream (plus the failed operation's own work) must be
        repeated.  With one or more checkpoints upstream, only the work of
        operations strictly downstream of the nearest checkpoint is lost,
        modelling the paper's savepoint/recovery construct.
        """
        upstream = self._flow.upstream_of(failed_op)
        chargeable = set(upstream) | {failed_op}
        recovered_from = ""
        upstream_checkpoints = upstream & self._checkpoints
        if upstream_checkpoints:
            # Nearest checkpoint = the one with the largest distance from sources
            # (i.e. the latest persisted state on the path to the failure).
            nearest = max(
                upstream_checkpoints,
                key=lambda cp: self._flow.distance_from_sources(cp),
            )
            recovered_from = nearest
            protected = self._flow.upstream_of(nearest) | {nearest}
            chargeable -= protected
        lost = sum(operation_times_ms.get(op_id, 0.0) for op_id in chargeable)
        return FailureEvent(op_id=failed_op, lost_work_ms=lost, recovered_from=recovered_from)

    def recovery_events(
        self,
        failed_ops: Sequence[str],
        operation_times_ms: Mapping[str, float],
    ) -> list[FailureEvent]:
        """Compute the lost work for every sampled failure of an execution."""
        return [self.lost_work_for_failure(op_id, operation_times_ms) for op_id in failed_ops]
