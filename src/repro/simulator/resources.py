"""Hardware/software resource model for the simulator.

Graph-level Flow Component Patterns include "management of the quality of
Hw/Sw resources" (Section 2.2 of the paper).  The resource model captures
the execution environment an ETL flow is deployed on: how many workers are
available for parallel operations, the relative speed of the machine and
the monetary cost per hour.  Selecting a different :class:`ResourceTier`
is exposed as a graph-level pattern and trades performance against cost.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ResourceTier(enum.Enum):
    """Named resource tiers, loosely modelled after cloud instance classes."""

    SMALL = "small"
    MEDIUM = "medium"
    LARGE = "large"
    XLARGE = "xlarge"


_TIER_SPECS: dict[ResourceTier, tuple[int, float, float]] = {
    # tier: (workers, speed multiplier, cost units per hour)
    ResourceTier.SMALL: (2, 0.8, 1.0),
    ResourceTier.MEDIUM: (4, 1.0, 2.2),
    ResourceTier.LARGE: (8, 1.4, 5.0),
    ResourceTier.XLARGE: (16, 1.9, 11.0),
}


@dataclass(frozen=True)
class ResourceModel:
    """The execution environment of a simulated ETL flow run.

    Attributes
    ----------
    workers:
        Number of parallel workers available to parallelised operations.
        The effective speed-up of a ``ParallelizeTask`` instance is capped
        by this value.
    speed:
        Relative CPU speed multiplier (1.0 = the reference machine used to
        calibrate per-tuple costs).
    cost_per_hour:
        Monetary cost (abstract units) of running the environment for an
        hour; feeds the cost quality characteristic.
    memory_mb:
        Memory available for blocking operations, in MiB.
    """

    workers: int = 4
    speed: float = 1.0
    cost_per_hour: float = 2.2
    memory_mb: float = 8192.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("a resource model needs at least one worker")
        if self.speed <= 0:
            raise ValueError("speed must be positive")
        if self.cost_per_hour < 0:
            raise ValueError("cost_per_hour must be non-negative")

    @classmethod
    def from_tier(cls, tier: ResourceTier | str) -> "ResourceModel":
        """Build a resource model from a named tier."""
        if isinstance(tier, str):
            tier = ResourceTier(tier)
        workers, speed, cost = _TIER_SPECS[tier]
        return cls(workers=workers, speed=speed, cost_per_hour=cost)

    def effective_parallelism(self, requested: int) -> int:
        """The degree of parallelism actually achievable for a request."""
        return max(1, min(int(requested), self.workers))

    def scale_time(self, milliseconds: float) -> float:
        """Scale a reference-machine duration to this environment."""
        return milliseconds / self.speed

    def cost_of(self, milliseconds: float) -> float:
        """Monetary cost of occupying the environment for ``milliseconds``."""
        hours = milliseconds / 3_600_000.0
        return hours * self.cost_per_hour
