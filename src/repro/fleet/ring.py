"""Consistent-hash ring: deterministic digest -> shard routing.

The sharded cache tier (:class:`~repro.fleet.sharded.ShardedProfileCache`)
partitions the profile store across N cache servers.  Profile keys are
already location-independent SHA-256 digests (:func:`repro.cache.key_digest`,
the disk tier's file-name hash), so routing only needs a stable function
``digest -> shard url`` with three properties:

* **Deterministic.**  The mapping is a pure function of the shard URL
  set (and the replica count): every client configured with the same
  ``cache_urls`` -- in any order -- routes every digest to the same
  shard, with no coordination and no shared state.  This is what lets a
  whole fleet of planners and workers agree on placement.
* **Uniform.**  Each shard carries ~1/N of the key space.  Placing
  ``replicas`` virtual points per shard on the ring smooths the
  partition sizes (the classic consistent-hashing trick); with the
  default 96 points per shard the busiest of 4 shards stays well within
  2x of the ideal quarter.
* **Minimal movement.**  Adding or removing one shard of N remaps only
  the keys the changed shard owns (~1/N of the space); every other
  digest keeps its assignment, so a ring change never invalidates the
  surviving shards' stores.  (Plain modulo hashing would remap nearly
  everything.)

Ring points are the first 8 bytes of ``sha256(f"{url}#{index}")``;
digests land on the ring by their own first 8 bytes and are served by
the next point clockwise.  Both sides reuse SHA-256 so the ring adds no
new hash dependency.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Sequence

#: Virtual points per shard.  More points = smoother partition at the
#: cost of a (tiny) larger sorted ring; 96 keeps the busiest of four
#: shards well within 2x of ideal while the ring stays a few hundred
#: entries.
DEFAULT_REPLICAS = 96


def _point(label: str) -> int:
    """A 64-bit ring position for an arbitrary label."""
    return int.from_bytes(hashlib.sha256(label.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """An immutable consistent-hash ring over shard URLs.

    Parameters
    ----------
    nodes:
        The shard identifiers (cache-server base URLs).  Order does not
        matter -- the ring is a pure function of the *set* -- but
        duplicates are rejected (two names for one position would skew
        the partition).
    replicas:
        Virtual points placed per node.
    """

    def __init__(self, nodes: Sequence[str], replicas: int = DEFAULT_REPLICAS) -> None:
        cleaned = [str(node) for node in nodes]
        if not cleaned:
            raise ValueError("a hash ring needs at least one node")
        if len(set(cleaned)) != len(cleaned):
            raise ValueError(f"duplicate ring nodes: {cleaned!r}")
        if replicas < 1:
            raise ValueError("replicas must be at least 1")
        self.nodes: tuple[str, ...] = tuple(sorted(cleaned))
        self.replicas = replicas
        points: list[tuple[int, str]] = []
        for node in self.nodes:
            for index in range(replicas):
                points.append((_point(f"{node}#{index}"), node))
        # Ties between different labels are astronomically unlikely but
        # must still order deterministically: break by node name.
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [node for _, node in points]

    # ------------------------------------------------------------------

    def node(self, digest: str) -> str:
        """The shard owning a 64-hex-char key digest.

        Uses the digest's own leading 8 bytes as the ring position --
        :func:`repro.cache.key_digest` output is uniformly distributed,
        so no re-hashing is needed.
        """
        position = int(digest[:16], 16)
        index = bisect.bisect_right(self._points, position)
        if index == len(self._points):  # wrap past the last point
            index = 0
        return self._owners[index]

    def assignments(self, digests: Iterable[str]) -> dict[str, str]:
        """``{digest: owning node}`` for a batch of digests."""
        return {digest: self.node(digest) for digest in digests}

    def counts(self, digests: Iterable[str]) -> dict[str, int]:
        """How many of the given digests each node owns (0 included)."""
        counts = {node: 0 for node in self.nodes}
        for digest in digests:
            counts[self.node(digest)] += 1
        return counts

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node: str) -> bool:
        return node in self.nodes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HashRing):
            return NotImplemented
        return self.nodes == other.nodes and self.replicas == other.replicas

    def __hash__(self) -> int:
        return hash((self.nodes, self.replicas))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashRing(nodes={list(self.nodes)!r}, replicas={self.replicas})"
