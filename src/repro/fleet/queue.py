"""A durable, pull-based job queue for the redesign worker fleet.

:class:`JobQueue` is the persistence layer between the submit/status
front-end (:class:`~repro.service.RedesignServer` constructed with
``queue=``) and the pull-based worker fleet (:mod:`repro.fleet.worker`,
``tools/worker.py``).  It is a single SQLite file -- stdlib only, safe
for concurrent access from many processes (WAL journal, immediate
transactions, a busy timeout) -- so the front-end, N workers and any
monitoring tool coordinate through the filesystem alone.

The lease protocol (see ``docs/fleet.md`` for the full state diagram):

* ``enqueue`` inserts a job as ``queued`` and returns its id
  (``plan-<n>``, monotonically increasing across restarts -- ids come
  from the table's AUTOINCREMENT rowid, so a restarted front-end can
  never reissue one).
* ``lease`` atomically claims the oldest *available* job for a worker:
  available means ``queued``, or ``leased`` with an **expired lease
  deadline** -- a job whose worker died mid-plan simply becomes
  leasable again once its deadline passes, which is the whole crash
  story; nothing marks jobs orphaned, the deadline does.  Each lease
  increments ``attempts``.
* ``heartbeat`` extends the deadline of a held lease (and records live
  progress -- the ``evaluated`` counter the status endpoint serves).
  It fails, returning ``False``, once the lease was lost to another
  worker: the worker must abandon the job (its successor owns it now).
* ``ack`` records the terminal result (``done`` with the result
  document, or ``failed`` with an error) -- but only for the worker
  that *currently* holds the lease.  A zombie worker acking a job that
  was re-leased after its lease expired is rejected, so a re-run can
  never produce duplicate (or conflicting) result rows.

Workers additionally ``register`` themselves (name, pid, start time)
and refresh ``last_seen`` with every lease/heartbeat; a worker process
restarted after a kill re-registers under the same name and simply
continues draining -- there is no session state to rebuild.
"""

from __future__ import annotations

import json
import logging
import os
import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

logger = logging.getLogger("repro.fleet.queue")

#: Default seconds a lease stays valid without a heartbeat.  Workers
#: heartbeat at a fraction of this, so only a genuinely dead worker
#: lets its lease expire.
DEFAULT_LEASE_TIMEOUT = 30.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    rowid       INTEGER PRIMARY KEY AUTOINCREMENT,
    id          TEXT NOT NULL UNIQUE,
    payload     TEXT NOT NULL,
    status      TEXT NOT NULL DEFAULT 'queued',
    worker      TEXT,
    lease_deadline REAL,
    leased_at   REAL,
    attempts    INTEGER NOT NULL DEFAULT 0,
    evaluated   INTEGER NOT NULL DEFAULT 0,
    enqueued_at REAL NOT NULL,
    finished_at REAL,
    result      TEXT,
    error       TEXT
);
CREATE INDEX IF NOT EXISTS jobs_status ON jobs (status, rowid);
CREATE TABLE IF NOT EXISTS workers (
    id          TEXT PRIMARY KEY,
    pid         INTEGER,
    registered_at REAL NOT NULL,
    restarts    INTEGER NOT NULL DEFAULT 0,
    last_seen   REAL NOT NULL
);
"""

#: Job states.  ``queued`` and (expired) ``leased`` are leasable;
#: ``done`` and ``failed`` are terminal.
TERMINAL_STATES = ("done", "failed")


@dataclass(frozen=True)
class LeasedJob:
    """What a worker receives from :meth:`JobQueue.lease`."""

    job_id: str
    payload: dict[str, Any]
    attempts: int
    lease_deadline: float


class JobQueue:
    """One SQLite-backed job queue shared by front-end and workers.

    Parameters
    ----------
    path:
        The database file.  Every process of the fleet opens its own
        :class:`JobQueue` on the same path; SQLite (WAL mode) arbitrates.
    lease_timeout:
        Default lease validity in seconds; :meth:`lease` and
        :meth:`heartbeat` accept per-call overrides.

    The instance is thread-safe (one connection guarded by a lock) and
    cheap to open -- ``tools/worker.py`` opens one per process.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive (seconds)")
        self.path = os.fspath(path)
        self.lease_timeout = lease_timeout
        # Observability only: queue.* latency histograms, depth gauges
        # and lease-expiry counters land here when set.
        self.metrics_registry = registry
        self._lock = threading.Lock()
        self._connection = sqlite3.connect(
            self.path,
            timeout=10.0,
            isolation_level=None,  # explicit transactions only
            check_same_thread=False,
        )
        self._connection.row_factory = sqlite3.Row
        self._connection.execute("PRAGMA journal_mode=WAL")
        self._connection.execute("PRAGMA synchronous=NORMAL")
        self._connection.execute("PRAGMA busy_timeout=10000")
        # executescript() manages its own transaction (it commits any
        # pending one first), so the schema runs outside _transaction().
        with self._lock:
            self._connection.executescript(_SCHEMA)
            try:
                # Migrate queues created before the lease-latency column.
                self._connection.execute("ALTER TABLE jobs ADD COLUMN leased_at REAL")
            except sqlite3.OperationalError:
                pass  # current schema: the column already exists

    # ------------------------------------------------------------------

    def _transaction(self):
        """``with`` helper: lock + BEGIN IMMEDIATE + commit/rollback.

        IMMEDIATE takes the write lock up front, so a lease's
        read-then-claim can never race another process into claiming
        the same job.
        """
        queue = self

        class _Txn:
            def __enter__(self) -> sqlite3.Connection:
                queue._lock.acquire()
                try:
                    queue._connection.execute("BEGIN IMMEDIATE")
                except BaseException:
                    queue._lock.release()
                    raise
                return queue._connection

            def __exit__(self, exc_type, *exc_info: object) -> None:
                try:
                    if exc_type is None:
                        queue._connection.execute("COMMIT")
                    else:
                        queue._connection.execute("ROLLBACK")
                finally:
                    queue._lock.release()

        return _Txn()

    def close(self) -> None:
        """Close the connection (the file keeps every job, of course)."""
        with self._lock:
            self._connection.close()

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Producer side (the submit/status front-end)
    # ------------------------------------------------------------------

    def enqueue(self, payload: dict[str, Any]) -> str:
        """Insert one job as ``queued``; returns its durable id."""
        document = json.dumps(payload)
        with self._transaction() as connection:
            cursor = connection.execute(
                "INSERT INTO jobs (id, payload, enqueued_at) VALUES ('', ?, ?)",
                (document, time.time()),
            )
            job_id = f"plan-{cursor.lastrowid}"
            connection.execute(
                "UPDATE jobs SET id = ? WHERE rowid = ?", (job_id, cursor.lastrowid)
            )
        if self.metrics_registry is not None:
            self.metrics_registry.counter("queue.enqueued").inc()
        logger.debug("enqueued %s", job_id)
        return job_id

    def status(self, job_id: str) -> dict[str, Any] | None:
        """One job's row as a JSON-able status document (``None`` if unknown).

        A ``leased`` job whose deadline already passed reports
        ``"stalled": True`` -- it will be re-leased by the next idle
        worker; callers see the truth instead of a forever-"running"
        job.
        """
        with self._lock:
            row = self._connection.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        return None if row is None else self._row_payload(row)

    def jobs(self) -> list[dict[str, Any]]:
        """Every job's status document, in submission order."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT * FROM jobs ORDER BY rowid"
            ).fetchall()
        return [self._row_payload(row) for row in rows]

    def result(self, job_id: str) -> dict[str, Any] | None:
        """The stored result document of a ``done`` job (else ``None``)."""
        with self._lock:
            row = self._connection.execute(
                "SELECT status, result FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        if row is None or row["status"] != "done" or row["result"] is None:
            return None
        return json.loads(row["result"])

    def delete(self, job_id: str) -> bool:
        """Forget a *terminal* job; ``False`` when absent or still live."""
        with self._transaction() as connection:
            cursor = connection.execute(
                "DELETE FROM jobs WHERE id = ? AND status IN ('done', 'failed')",
                (job_id,),
            )
            return cursor.rowcount > 0

    @staticmethod
    def _row_payload(row: sqlite3.Row) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "id": row["id"],
            "status": row["status"],
            "attempts": row["attempts"],
            "evaluated": row["evaluated"],
        }
        if row["worker"] is not None:
            payload["worker"] = row["worker"]
        if row["error"] is not None:
            payload["error"] = row["error"]
        if row["status"] == "leased" and (row["lease_deadline"] or 0) < time.time():
            payload["stalled"] = True
        return payload

    # ------------------------------------------------------------------
    # Consumer side (the worker fleet)
    # ------------------------------------------------------------------

    def lease(
        self, worker_id: str, lease_timeout: float | None = None
    ) -> LeasedJob | None:
        """Claim the oldest available job for ``worker_id`` (or ``None``).

        Available = ``queued``, or ``leased`` past its deadline (the
        crashed-worker path: the dead worker's lease simply expires and
        the job is claimed again, ``attempts`` + 1).  The claim happens
        inside one immediate transaction, so two workers can never
        lease the same job.
        """
        timeout = self.lease_timeout if lease_timeout is None else lease_timeout
        now = time.time()
        with self._transaction() as connection:
            row = connection.execute(
                "SELECT rowid, id, payload, attempts, status, enqueued_at FROM jobs "
                "WHERE status = 'queued' "
                "   OR (status = 'leased' AND lease_deadline < ?) "
                "ORDER BY rowid LIMIT 1",
                (now,),
            ).fetchone()
            if row is None:
                self._touch_worker(connection, worker_id, now)
                return None
            deadline = now + timeout
            connection.execute(
                "UPDATE jobs SET status = 'leased', worker = ?, leased_at = ?, "
                "lease_deadline = ?, attempts = attempts + 1 WHERE rowid = ?",
                (worker_id, now, deadline, row["rowid"]),
            )
            self._touch_worker(connection, worker_id, now)
        registry = self.metrics_registry
        if registry is not None:
            registry.histogram("queue.enqueue_to_lease_seconds").observe(
                max(0.0, now - row["enqueued_at"])
            )
        if row["status"] == "leased":
            # An expired lease reclaimed: the crashed-worker recovery path.
            if registry is not None:
                registry.counter("queue.lease_expirations").inc()
            logger.warning(
                "job %s lease expired; re-leased to %s (attempt %d)",
                row["id"], worker_id, row["attempts"] + 1,
            )
        else:
            logger.debug("job %s leased to %s", row["id"], worker_id)
        return LeasedJob(
            job_id=row["id"],
            payload=json.loads(row["payload"]),
            attempts=row["attempts"] + 1,
            lease_deadline=deadline,
        )

    def heartbeat(
        self,
        job_id: str,
        worker_id: str,
        evaluated: int | None = None,
        lease_timeout: float | None = None,
    ) -> bool:
        """Extend a held lease (and record progress); ``False`` = lease lost.

        A ``False`` return is the signal to *stop working on the job*:
        either the lease expired and another worker claimed it, or the
        job was deleted.  Continuing anyway is harmless -- the final
        :meth:`ack` will be rejected for the same reason -- but wasted.
        """
        timeout = self.lease_timeout if lease_timeout is None else lease_timeout
        now = time.time()
        with self._transaction() as connection:
            assignments = ["lease_deadline = ?"]
            arguments: list[Any] = [now + timeout]
            if evaluated is not None:
                assignments.append("evaluated = ?")
                arguments.append(evaluated)
            arguments += [job_id, worker_id]
            cursor = connection.execute(
                f"UPDATE jobs SET {', '.join(assignments)} "
                "WHERE id = ? AND status = 'leased' AND worker = ?",
                arguments,
            )
            self._touch_worker(connection, worker_id, now)
            return cursor.rowcount > 0

    def ack(
        self,
        job_id: str,
        worker_id: str,
        status: str,
        result: dict[str, Any] | None = None,
        error: str | None = None,
        evaluated: int | None = None,
    ) -> bool:
        """Record a terminal outcome; ``False`` = this worker lost the lease.

        Only the worker currently recorded on the lease may ack -- the
        guard that makes a crashed-and-re-leased job's *original*
        worker (a zombie that woke up after its lease expired and was
        reassigned) unable to write a second, conflicting result row.
        An expired-but-not-yet-re-leased lease still acks fine: the
        result beat the competition, nothing re-runs.
        """
        if status not in TERMINAL_STATES:
            raise ValueError(
                f"ack status must be terminal {TERMINAL_STATES}, got {status!r}"
            )
        now = time.time()
        with self._transaction() as connection:
            timings = connection.execute(
                "SELECT leased_at, enqueued_at FROM jobs "
                "WHERE id = ? AND status = 'leased' AND worker = ?",
                (job_id, worker_id),
            ).fetchone()
            assignments = [
                "status = ?",
                "result = ?",
                "error = ?",
                "finished_at = ?",
                "lease_deadline = NULL",
            ]
            arguments: list[Any] = [
                status,
                json.dumps(result) if result is not None else None,
                error,
                now,
            ]
            if evaluated is not None:
                assignments.append("evaluated = ?")
                arguments.append(evaluated)
            arguments += [job_id, worker_id]
            cursor = connection.execute(
                f"UPDATE jobs SET {', '.join(assignments)} "
                "WHERE id = ? AND status = 'leased' AND worker = ?",
                arguments,
            )
            self._touch_worker(connection, worker_id, now)
            acked = cursor.rowcount > 0
        if acked:
            registry = self.metrics_registry
            if registry is not None:
                registry.counter(f"queue.acked_{status}").inc()
                if timings is not None and timings["leased_at"] is not None:
                    registry.histogram("queue.lease_to_ack_seconds").observe(
                        max(0.0, now - timings["leased_at"])
                    )
                if timings is not None:
                    registry.histogram("queue.enqueue_to_ack_seconds").observe(
                        max(0.0, now - timings["enqueued_at"])
                    )
            if status == "failed":
                logger.warning("job %s failed on %s: %s", job_id, worker_id, error)
            else:
                logger.debug("job %s done on %s", job_id, worker_id)
        return acked

    # ------------------------------------------------------------------
    # Worker registry
    # ------------------------------------------------------------------

    def register_worker(self, worker_id: str, pid: int | None = None) -> None:
        """Announce a worker (idempotent; a restart bumps ``restarts``)."""
        now = time.time()
        with self._transaction() as connection:
            cursor = connection.execute(
                "UPDATE workers SET pid = ?, restarts = restarts + 1, last_seen = ? "
                "WHERE id = ?",
                (pid, now, worker_id),
            )
            if cursor.rowcount == 0:
                connection.execute(
                    "INSERT INTO workers (id, pid, registered_at, last_seen) "
                    "VALUES (?, ?, ?, ?)",
                    (worker_id, pid, now, now),
                )

    @staticmethod
    def _touch_worker(connection: sqlite3.Connection, worker_id: str, now: float) -> None:
        connection.execute(
            "UPDATE workers SET last_seen = ? WHERE id = ?", (now, worker_id)
        )

    def workers(self, active_within: float | None = None) -> list[dict[str, Any]]:
        """Registered workers (optionally only those seen recently)."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT * FROM workers ORDER BY id"
            ).fetchall()
        cutoff = None if active_within is None else time.time() - active_within
        return [
            {
                "id": row["id"],
                "pid": row["pid"],
                "restarts": row["restarts"],
                "last_seen": row["last_seen"],
            }
            for row in rows
            if cutoff is None or row["last_seen"] >= cutoff
        ]

    # ------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Queue depth by state, plus how many leases are currently expired."""
        now = time.time()
        with self._lock:
            rows = self._connection.execute(
                "SELECT status, COUNT(*) AS n, "
                "SUM(CASE WHEN status = 'leased' AND lease_deadline < ? "
                "    THEN 1 ELSE 0 END) AS expired "
                "FROM jobs GROUP BY status",
                (now,),
            ).fetchall()
        counts = {"queued": 0, "leased": 0, "done": 0, "failed": 0, "expired": 0}
        for row in rows:
            counts[row["status"]] = row["n"]
            counts["expired"] += row["expired"] or 0
        counts["depth"] = counts["queued"] + counts["leased"]
        registry = self.metrics_registry
        if registry is not None:
            registry.gauge("queue.depth").set(counts["depth"])
            registry.gauge("queue.expired_leases").set(counts["expired"])
        return counts

    def job_latency(self) -> dict[str, float]:
        """End-to-end (enqueue -> ack) latency percentiles over terminal jobs.

        Exact quantiles over the stored ``finished_at - enqueued_at``
        spans -- the durable record works across processes, so a
        front-end can report latency for acks that happened in worker
        processes it never saw.  ``{"count": 0}`` with no terminal jobs.
        """
        with self._lock:
            rows = self._connection.execute(
                "SELECT finished_at - enqueued_at AS latency FROM jobs "
                "WHERE status IN ('done', 'failed') AND finished_at IS NOT NULL "
                "ORDER BY latency",
            ).fetchall()
        values = [row["latency"] for row in rows if row["latency"] is not None]
        if not values:
            return {"count": 0}

        def rank(quantile: float) -> float:
            return values[min(len(values) - 1, int(quantile * len(values)))]

        return {
            "count": len(values),
            "mean": sum(values) / len(values),
            "p50": rank(0.50),
            "p95": rank(0.95),
            "p99": rank(0.99),
        }

    def __len__(self) -> int:
        with self._lock:
            row = self._connection.execute("SELECT COUNT(*) AS n FROM jobs").fetchone()
        return row["n"]
