"""The pull-based redesign worker: lease -> plan -> heartbeat -> ack.

A :class:`FleetWorker` drains the durable :class:`~repro.fleet.queue.JobQueue`
that a queue-backed :class:`~repro.service.RedesignServer` front-end
fills.  It owns a full planning stack -- its own
:class:`~repro.core.planner.Planner` per job, wired to whatever
profile-cache tier the fleet shares (typically a
:class:`~repro.fleet.sharded.ShardedProfileCache` over the shard
servers) -- and follows the queue's lease protocol:

* lease the oldest available job (``None`` -> sleep ``poll_interval``),
* plan it, heartbeating on a background timer so the lease never
  expires while the worker is alive (each heartbeat also publishes the
  live evaluated-alternatives counter the status endpoint serves),
* ack ``done`` with the result document
  (:func:`~repro.service.results.result_to_dict` -- the same shape the
  in-process server produces, so :class:`~repro.service.RedesignClient`
  cannot tell the difference), or ``failed`` with the error.

Crash behaviour needs no code: a worker that dies mid-plan simply stops
heartbeating, its lease expires, and the next idle worker re-leases the
job.  If the dead worker turns out to be merely *slow* and acks after
the re-lease, the queue rejects the zombie ack -- exactly one result
row survives.  Tests drive this path deterministically with
:meth:`FleetWorker.kill`, which makes the worker abandon its current
job without acking (and stop), indistinguishable from a crash as far as
the queue is concerned; a killed worker (or a restarted
``tools/worker.py`` process) just re-registers and keeps draining.

Run one in-process (``worker.start()`` -- a daemon thread -- or
``worker.run()`` inline) for tests, or as a process via
``tools/worker.py`` / ``tools/serve.py fleet``.
"""

from __future__ import annotations

import logging
import os
import threading
import uuid
from typing import Any, Callable

from repro.cache import CacheBackend
from repro.core.planner import Planner
from repro.core.session import RedesignSession
from repro.etl.graph import ETLGraph
from repro.fleet.queue import DEFAULT_LEASE_TIMEOUT, JobQueue, LeasedJob
from repro.obs.metrics import MetricsRegistry, maybe_timer
from repro.patterns.registry import PatternRegistry
from repro.service.redesign_server import configuration_from_request
from repro.service.results import result_to_dict

logger = logging.getLogger(__name__)

#: How long an idle worker sleeps between lease attempts.
DEFAULT_POLL_INTERVAL = 0.2


class _JobAbandoned(Exception):
    """Internal: stop planning the current job *without acking it*."""


class FleetWorker:
    """One queue-draining planner in the redesign fleet.

    Parameters
    ----------
    queue:
        The shared :class:`JobQueue` (each worker may open its own
        instance on the same path -- SQLite arbitrates).
    worker_id:
        Stable name for the lease/registry tables.  Reusing a name
        after a crash *is* the restart story: the queue bumps the
        worker's ``restarts`` counter and the worker keeps draining.
        Defaults to ``worker-<8 hex chars>``.
    cache:
        The profile-cache tier injected into every planner, shared
        across this worker's jobs (e.g. a
        :class:`~repro.fleet.sharded.ShardedProfileCache`).  ``None``
        plans cold.
    palette:
        Optional pattern palette forwarded to every planner.
    poll_interval / lease_timeout / heartbeat_interval:
        Idle sleep; lease validity requested from the queue (default:
        the queue's); heartbeat period (default: a third of the lease
        timeout, so two beats may be lost before the lease expires).
    """

    def __init__(
        self,
        queue: JobQueue,
        worker_id: str | None = None,
        cache: CacheBackend | None = None,
        palette: PatternRegistry | None = None,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        lease_timeout: float | None = None,
        heartbeat_interval: float | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.queue = queue
        # Observability only: fleet.worker.* loop timings and job-outcome
        # counters mirror the jobs_done/failed/abandoned attributes.
        self.metrics_registry = registry
        self.worker_id = worker_id or f"worker-{uuid.uuid4().hex[:8]}"
        self.cache = cache
        self.palette = palette
        self.poll_interval = poll_interval
        self.lease_timeout = (
            queue.lease_timeout if lease_timeout is None else lease_timeout
        )
        if self.lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive (seconds)")
        self.heartbeat_interval = (
            self.lease_timeout / 3.0 if heartbeat_interval is None else heartbeat_interval
        )
        self.jobs_done = 0
        self.jobs_failed = 0
        self.jobs_abandoned = 0
        self._stop = threading.Event()
        self._killed = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "FleetWorker":
        """Run the drain loop on a daemon thread (the in-process mode)."""
        if self._thread is not None and self._thread.is_alive():
            raise RuntimeError(f"worker {self.worker_id} is already running")
        self._stop.clear()
        self._killed.clear()
        self._thread = threading.Thread(
            target=self.run, name=f"fleet-{self.worker_id}", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float | None = 30.0) -> None:
        """Graceful shutdown: finish (and ack) the current job, then exit."""
        self._stop.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout)
        self._thread = None

    def kill(self, timeout: float | None = 30.0) -> None:
        """Simulate a crash: abandon the current job *without acking*.

        The job's lease is left to expire, after which any worker
        (including this one, restarted) re-leases it.  This is the
        deterministic stand-in for ``kill -9`` that the failure-storm
        tests drive.
        """
        self._killed.set()
        self.stop(timeout)

    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    def run(self) -> None:
        """Drain the queue until stopped (inline mode; ``start()`` wraps it)."""
        self.queue.register_worker(self.worker_id, pid=os.getpid())
        logger.info("worker %s draining %s", self.worker_id, self.queue.path)
        while not self._stop.is_set():
            try:
                job = self.queue.lease(self.worker_id, self.lease_timeout)
            except Exception:
                logger.exception("worker %s: lease failed", self.worker_id)
                self._stop.wait(self.poll_interval)
                continue
            if job is None:
                self._stop.wait(self.poll_interval)
                continue
            self._execute(job)

    # ------------------------------------------------------------------
    # One job
    # ------------------------------------------------------------------

    def _count_job(self, outcome: str) -> None:
        if self.metrics_registry is not None:
            self.metrics_registry.counter(f"fleet.worker.jobs_{outcome}").inc()

    def _execute(self, job: LeasedJob) -> None:
        with maybe_timer(self.metrics_registry, "fleet.worker.loop_seconds"):
            self._execute_timed(job)

    def _execute_timed(self, job: LeasedJob) -> None:
        evaluated = [0]
        lease_lost = threading.Event()
        stop_heartbeat = threading.Event()
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            args=(job.job_id, evaluated, lease_lost, stop_heartbeat),
            name=f"fleet-{self.worker_id}-heartbeat",
            daemon=True,
        )
        heartbeat.start()
        try:
            result_doc = self._plan(job, evaluated, lease_lost)
        except _JobAbandoned:
            self.jobs_abandoned += 1
            self._count_job("abandoned")
            logger.warning(
                "worker %s abandoned %s (attempt %d); lease will expire",
                self.worker_id,
                job.job_id,
                job.attempts,
            )
            return
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
            if self.queue.ack(
                job.job_id, self.worker_id, "failed", error=error, evaluated=evaluated[0]
            ):
                self.jobs_failed += 1
                self._count_job("failed")
            logger.info("worker %s failed %s: %s", self.worker_id, job.job_id, error)
            return
        finally:
            stop_heartbeat.set()
            heartbeat.join()
        if self.queue.ack(
            job.job_id, self.worker_id, "done", result=result_doc, evaluated=evaluated[0]
        ):
            self.jobs_done += 1
            self._count_job("done")
        else:
            # The lease expired (and was re-claimed) before we finished:
            # we are the zombie.  The queue already rejected our result.
            self.jobs_abandoned += 1
            self._count_job("abandoned")
            logger.warning(
                "worker %s lost the lease on %s before ack; result discarded",
                self.worker_id,
                job.job_id,
            )

    def _plan(
        self,
        job: LeasedJob,
        evaluated: list[int],
        lease_lost: threading.Event,
    ) -> dict[str, Any]:
        payload = job.payload
        flow = ETLGraph.from_dict(payload["flow"])
        configuration = configuration_from_request(payload.get("configuration"))
        planner = Planner(
            palette=self.palette,
            configuration=configuration,
            profile_cache=self.cache,
        )
        session = RedesignSession(flow, planner=planner)

        def on_evaluated(_alternative) -> None:
            evaluated[0] += 1
            if self._killed.is_set() or lease_lost.is_set():
                raise _JobAbandoned(job.job_id)

        if self._killed.is_set():  # killed between lease and planning start
            raise _JobAbandoned(job.job_id)
        iteration = session.iterate(on_evaluated=on_evaluated)
        return result_to_dict(iteration.result)

    def _heartbeat_loop(
        self,
        job_id: str,
        evaluated: list[int],
        lease_lost: threading.Event,
        stop: threading.Event,
    ) -> None:
        while not stop.wait(self.heartbeat_interval):
            try:
                alive = self.queue.heartbeat(
                    job_id, self.worker_id, evaluated=evaluated[0],
                    lease_timeout=self.lease_timeout,
                )
            except Exception:
                logger.exception("worker %s: heartbeat for %s failed", self.worker_id, job_id)
                continue
            if not alive:
                # Re-leased by someone else (or deleted): abandon.
                lease_lost.set()
                return


def run_worker(
    queue_path: str,
    worker_id: str | None = None,
    cache_factory: Callable[[], CacheBackend | None] | None = None,
    **worker_kwargs: Any,
) -> FleetWorker:
    """Open the queue at ``queue_path`` and drain it until interrupted.

    The process entry point used by ``tools/worker.py``; blocks in
    :meth:`FleetWorker.run`.
    """
    queue = JobQueue(queue_path)
    cache = cache_factory() if cache_factory is not None else None
    worker = FleetWorker(queue, worker_id=worker_id, cache=cache, **worker_kwargs)
    try:
        worker.run()
    finally:
        if cache is not None and hasattr(cache, "close"):
            cache.close()
        queue.close()
    return worker
