"""The sharded network cache tier: one profile store over N cache servers.

:class:`ShardedProfileCache` is the scale-out sibling of
:class:`~repro.cache.http.HTTPProfileCache`: instead of one
:class:`~repro.service.CacheServer` it fronts a *fleet* of them, routing
every key by the consistent-hash ring of :mod:`repro.fleet.ring` over
the key's SHA-256 digest.  Selected by
``ProcessingConfiguration.cache_tier="sharded"`` with the server
addresses in ``cache_urls``.

Design points:

* **Client-side routing, no coordinator.**  The ring is a pure function
  of the URL set, so every planner and worker configured with the same
  ``cache_urls`` agrees on placement with zero coordination -- exactly
  how the digest protocol already makes keys location-independent.
* **One shard client per shard, full PR 6 wire machinery each.**  Every
  shard is served by its own :class:`HTTPProfileCache`: pooled
  keep-alive connections, transparent compression, per-campaign write
  batching, bounded pending buffers and bearer-token auth all apply
  per shard.
* **Per-shard degradation and recovery.**  A dead shard degrades *its*
  client to a local in-memory fallback and probes ``/health`` on the
  PR 6 backoff timer; the other shards keep serving normally (their
  stores stay warm) and a revived shard wins its slice of traffic back
  and republishes what its fallback accumulated.  A plan never fails,
  and a single shard outage re-simulates only ~1/N of the key space.
* **Batched fan-out.**  :meth:`get_many` splits a lookup window by
  shard and issues the per-shard ``POST /get_many`` round-trips
  *concurrently* (a small persistent thread pool, one worker per
  shard, so the pooled per-thread connections stay warm); a window's
  latency is the slowest shard, not the sum.
* **Deterministic rebalancing.**  :meth:`reconfigure` swaps the URL set
  in place: pending writes are flushed first, clients for surviving
  shards are kept (their connections, stats and degradation state
  included), and the new ring -- again a pure function of the new set
  -- moves only the ~1/N of keys the change owns.  Two clients that
  reconfigure to the same set agree on every assignment.
* **Aggregated observability.**  :meth:`tier_stats` reports the logical
  sharded tier, every shard's client/server/fallback breakdown *and*
  the aggregated wire counters (:meth:`wire_stats` sums the per-shard
  transports), so ``RedesignSession.cache_stats()["tiers"]`` shows the
  whole fleet instead of one client.
* **Pickling.**  Like the single-server tier, the cache is a *handle*:
  clones re-open the same URL set with fresh buffers and connection
  pools while the logical statistics survive, so process-pool workers
  read through the same fleet.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Sequence

from repro.cache.backend import CacheStats, observe_get_many
from repro.cache.disk import key_digest
from repro.cache.http import (
    DEFAULT_MAX_PENDING,
    DEFAULT_RECOVERY_INTERVAL,
    DEFAULT_TIMEOUT,
    HTTPProfileCache,
)
from repro.fleet.ring import DEFAULT_REPLICAS, HashRing
from repro.wire import COMPRESS_MIN_BYTES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.quality.composite import QualityProfile

#: Wire-counter names aggregated across shards by :meth:`wire_stats`.
_WIRE_COUNTERS = (
    "requests",
    "connections_opened",
    "reconnects",
    "compressed_requests",
    "compressed_responses",
    "bytes_sent",
    "bytes_received",
    "raw_bytes_sent",
    "raw_bytes_received",
    "recoveries",
)


class ShardedProfileCache:
    """A profile cache partitioned over N :class:`~repro.service.CacheServer`\\ s.

    Parameters
    ----------
    urls:
        Base URLs of the shard servers (at least one).  The consistent
        hash ring over this set decides which shard owns which digest;
        URL order is irrelevant.
    ring_replicas:
        Virtual ring points per shard
        (``ProcessingConfiguration.fleet_ring_replicas``); more points =
        smoother partition.
    timeout / compression / compress_min_bytes / auth_token /
    recovery_interval / max_pending / fallback_max_entries / pool:
        Forwarded to every per-shard :class:`HTTPProfileCache` -- the
        same knobs, applied shard-by-shard (one shared token for the
        whole fleet).
    """

    #: Puts buffer in the owning shard's client until :meth:`flush`
    #: (the discipline the parallel evaluator expects).
    batch_writes = True

    def __init__(
        self,
        urls: Sequence[str],
        ring_replicas: int = DEFAULT_REPLICAS,
        timeout: float = DEFAULT_TIMEOUT,
        fallback_max_entries: int | None = None,
        compression: bool = True,
        compress_min_bytes: int = COMPRESS_MIN_BYTES,
        auth_token: str | None = None,
        recovery_interval: float | None = DEFAULT_RECOVERY_INTERVAL,
        max_pending: int = DEFAULT_MAX_PENDING,
        pool: bool = True,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        cleaned = [str(url).rstrip("/") for url in urls]
        if not cleaned:
            raise ValueError("a sharded cache needs at least one shard URL")
        # Observability only (logical fan-out view under "cache.sharded");
        # deliberately kept out of ``_client_kwargs`` so handle clones
        # (which round-trip those kwargs) come back unregistered.
        self.metrics_registry = registry
        self._client_kwargs = dict(
            timeout=timeout,
            fallback_max_entries=fallback_max_entries,
            compression=compression,
            compress_min_bytes=compress_min_bytes,
            auth_token=auth_token,
            recovery_interval=recovery_interval,
            max_pending=max_pending,
            pool=pool,
        )
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._executor: ThreadPoolExecutor | None = None
        self.ring = HashRing(cleaned, replicas=ring_replicas)
        self._clients: dict[str, HTTPProfileCache] = {
            url: self._new_client(url) for url in self.ring.nodes
        }

    def _new_client(self, url: str) -> HTTPProfileCache:
        """A per-shard client wired to the fleet-wide metrics registry."""
        client = HTTPProfileCache(url, **self._client_kwargs)
        # All shards share one registry: wire.* counters aggregate the
        # fleet's transport traffic (and per-shard cache.http.* stays
        # off -- the logical "sharded" tier is the client-side story).
        client._client.metrics_registry = self.metrics_registry
        return client

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    @property
    def urls(self) -> tuple[str, ...]:
        """The shard URL set (sorted -- the ring's canonical order)."""
        return self.ring.nodes

    @property
    def ring_replicas(self) -> int:
        return self.ring.replicas

    def shard_for(self, key: tuple) -> str:
        """The URL of the shard owning a cache key (routing introspection)."""
        return self.ring.node(key_digest(key))

    def client_for(self, url: str) -> HTTPProfileCache:
        """The per-shard client (tests and monitors peek at degradation)."""
        return self._clients[url]

    @property
    def degraded_shards(self) -> tuple[str, ...]:
        """URLs of shards currently served by their local fallback."""
        return tuple(
            url for url, client in self._clients.items() if client.degraded
        )

    def reconfigure(self, urls: Sequence[str]) -> None:
        """Swap the shard set, keeping surviving shards' clients warm.

        Pending writes are flushed to their *current* owners first (the
        old ring's placement is still the fleet-wide truth until the
        change), then the ring is rebuilt over the new set: clients of
        surviving URLs are reused (connections, statistics and
        degradation state intact), removed shards' clients are closed,
        new shards get fresh clients.  Deterministic by construction --
        the new mapping is a pure function of the new URL set, so every
        fleet member that applies the same change agrees on every key's
        new owner, and only the changed shards' ~1/N slice moves.
        """
        cleaned = [str(url).rstrip("/") for url in urls]
        self.flush()
        with self._lock:
            new_ring = HashRing(cleaned, replicas=self.ring.replicas)
            old_clients = self._clients
            clients: dict[str, HTTPProfileCache] = {}
            for url in new_ring.nodes:
                existing = old_clients.pop(url, None)
                clients[url] = (
                    existing if existing is not None else self._new_client(url)
                )
            retired = list(old_clients.values())
            self.ring = new_ring
            self._clients = clients
            executor, self._executor = self._executor, None
        for client in retired:
            client.close()
        if executor is not None:
            executor.shutdown(wait=False)

    # ------------------------------------------------------------------
    # Fan-out plumbing
    # ------------------------------------------------------------------

    def _pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                # One worker per shard: fan-out threads are stable, so
                # each (thread, shard-client) pair keeps one pooled
                # keep-alive connection warm across windows.
                self._executor = ThreadPoolExecutor(
                    max_workers=len(self._clients),
                    thread_name_prefix="shard-fanout",
                )
            return self._executor

    def _group_by_shard(self, keys: Sequence[tuple]) -> dict[str, list[int]]:
        """``{shard url: [index into keys]}`` for one lookup window."""
        groups: dict[str, list[int]] = {}
        for index, key in enumerate(keys):
            groups.setdefault(self.ring.node(key_digest(key)), []).append(index)
        return groups

    # ------------------------------------------------------------------
    # CacheBackend protocol
    # ------------------------------------------------------------------

    def get(self, key: tuple) -> "QualityProfile | None":
        """Look up one profile on its owning shard."""
        profile = self._clients[self.shard_for(key)].get(key)
        with self._lock:
            if profile is None:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
        return profile

    def get_many(self, keys: Sequence[tuple]) -> "list[QualityProfile | None]":
        """Batched lookup: one concurrent ``/get_many`` per involved shard."""
        start = time.perf_counter()
        results: "list[QualityProfile | None]" = [None] * len(keys)
        groups = self._group_by_shard(keys)
        if len(groups) <= 1:
            for url, indices in groups.items():
                found = self._clients[url].get_many([keys[i] for i in indices])
                for index, profile in zip(indices, found):
                    results[index] = profile
        else:
            futures = {
                self._pool().submit(
                    self._clients[url].get_many, [keys[i] for i in indices]
                ): indices
                for url, indices in groups.items()
            }
            for future, indices in futures.items():
                for index, profile in zip(indices, future.result()):
                    results[index] = profile
        with self._lock:
            for profile in results:
                if profile is None:
                    self.stats.misses += 1
                else:
                    self.stats.hits += 1
        observe_get_many(
            self.metrics_registry, "sharded", time.perf_counter() - start, results
        )
        return results

    def put(self, key: tuple, profile: "QualityProfile") -> None:
        """Buffer an insert in the owning shard's client."""
        self._clients[self.shard_for(key)].put(key, profile)

    def flush(self) -> None:
        """Publish every shard's buffered writes (one batch per shard)."""
        for client in list(self._clients.values()):
            client.flush()

    def clear(self) -> None:
        """Drop buffers, fallbacks and (best-effort) every shard's store."""
        with self._lock:
            self.stats = CacheStats()
        for client in list(self._clients.values()):
            client.clear()

    def __len__(self) -> int:
        """Total entries across shards (best-effort, like the shard tier)."""
        return sum(len(client) for client in self._clients.values())

    def __contains__(self, key: tuple) -> bool:
        return key in self._clients[self.shard_for(key)]

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def wire_stats(self) -> dict[str, int]:
        """Aggregated transport counters of every shard's wire client.

        The per-shard :meth:`HTTPProfileCache.wire_stats` only sees its
        own connection pool; a fleet operator wants the sum.  Shards
        currently degraded still report (their counters stopped moving,
        they did not vanish).
        """
        total = dict.fromkeys(_WIRE_COUNTERS, 0)
        for client in self._clients.values():
            for name, value in client.wire_stats().items():
                total[name] = total.get(name, 0) + value
        return total

    def tier_stats(self) -> dict[str, dict[str, float]]:
        """The whole fleet's breakdown, one entry per shard tier.

        ``"sharded"`` is this cache's logical accounting (one hit or
        miss per lookup, whichever shard -- or fallback -- served it);
        ``"shard<i>:<tier>"`` flattens each shard client's own
        ``http``/``server``/``fallback`` view (``server`` omitted for
        unreachable shards, as in the single-server tier); ``"wire"``
        is the aggregated transport accounting.  Best-effort
        throughout: a monitoring scrape never degrades a shard.
        """
        tiers: dict[str, dict[str, float]] = {}
        with self._lock:
            tiers["sharded"] = self.stats.as_dict()
        for index, url in enumerate(self.ring.nodes):
            for name, stats in self._clients[url].tier_stats().items():
                tiers[f"shard{index}:{name}"] = stats
        tiers["wire"] = dict(self.wire_stats())
        return tiers

    def close(self) -> None:
        """Close every shard client (probes cancelled) and the fan-out pool."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False)
        for client in self._clients.values():
            client.close()

    # ------------------------------------------------------------------
    # Pickling: a handle onto the same fleet (fresh buffers and pools,
    # logical statistics survive -- consistent with the other tiers).
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict[str, object]:
        return {
            "urls": list(self.ring.nodes),
            "ring_replicas": self.ring.replicas,
            "client_kwargs": dict(self._client_kwargs),
            "stats": self.stats,
        }

    def __setstate__(self, state: dict[str, object]) -> None:
        kwargs = dict(state.get("client_kwargs") or {})
        self.__init__(  # type: ignore[misc]
            state["urls"],
            ring_replicas=state.get("ring_replicas", DEFAULT_REPLICAS),
            **kwargs,
        )
        stats = state.get("stats")
        if stats is not None:
            self.stats = stats  # type: ignore[assignment]
