"""Scale-out for the redesign loop: sharded caching + a worker fleet.

Two independent pieces that compose into a fleet (``docs/fleet.md``):

* :class:`HashRing` / :class:`ShardedProfileCache` -- client-side
  consistent-hash routing of profile digests across N
  :class:`~repro.service.CacheServer` shards
  (``cache_tier="sharded"``, ``cache_urls=...``), degrading and
  recovering per shard.
* :class:`JobQueue` / :class:`FleetWorker` -- a durable SQLite-backed
  job queue with a lease/heartbeat/ack protocol, drained by pull-based
  planner workers (``tools/worker.py``), fronted by a queue-backed
  :class:`~repro.service.RedesignServer`.
"""

from repro.fleet.queue import DEFAULT_LEASE_TIMEOUT, JobQueue, LeasedJob
from repro.fleet.ring import DEFAULT_REPLICAS, HashRing
from repro.fleet.sharded import ShardedProfileCache
from repro.fleet.worker import DEFAULT_POLL_INTERVAL, FleetWorker, run_worker

__all__ = [
    "DEFAULT_LEASE_TIMEOUT",
    "DEFAULT_POLL_INTERVAL",
    "DEFAULT_REPLICAS",
    "FleetWorker",
    "HashRing",
    "JobQueue",
    "LeasedJob",
    "ShardedProfileCache",
    "run_worker",
]
