#!/usr/bin/env python
"""Generate the bundled sample model documents under ``examples/data/``.

``examples/import_models.py`` (and the ``tests/io`` sample-document
suite) load logical ETL models in the formats the paper's demo supports:
xLM documents, a Pentaho Data Integration (PDI) transformation and a
JSON flow.  Those documents are derived from the built-in workloads, so
instead of committing generated artefacts they are materialised on
demand by this script::

    python examples/generate_data.py

Re-running is idempotent: the documents are deterministic exports of the
workload factories, so the files only change when the workloads do.
"""

from __future__ import annotations

from pathlib import Path

from repro.io.jsonflow import save_flow_json
from repro.io.pdi import save_flow_pdi
from repro.io.xlm import save_flow_xlm
from repro.workloads import purchases_flow, tpcds_sales_flow, tpch_refresh_flow

DATA_DIR = Path(__file__).resolve().parent / "data"


def main() -> None:
    DATA_DIR.mkdir(parents=True, exist_ok=True)
    purchases = purchases_flow(rows_per_source=10_000)
    written = [
        save_flow_xlm(tpch_refresh_flow(scale=0.1), DATA_DIR / "tpch_refresh.xlm"),
        save_flow_xlm(purchases, DATA_DIR / "s_purchases.xlm"),
        save_flow_json(purchases, DATA_DIR / "s_purchases.json"),
        save_flow_pdi(tpcds_sales_flow(scale=0.1), DATA_DIR / "tpcds_sales.ktr"),
    ]
    for path in written:
        print(f"wrote {path.relative_to(DATA_DIR.parent.parent)}")


if __name__ == "__main__":
    main()
