#!/usr/bin/env python
"""Import bundled logical ETL models (xLM / PDI / JSON) and plan one of them.

The first step of a POIESIS session is to import an initial ETL model; the
paper's demo loads xLM documents of the TPC-DS / TPC-H processes and also
supports Pentaho Data Integration (PDI) transformations.  This example
loads the sample documents bundled under ``examples/data/``, prints a
short structural summary of each, and runs a planning cycle on the
xLM-imported TPC-H process.

Run with::

    python examples/import_models.py
"""

from __future__ import annotations

from pathlib import Path

from repro import Planner, ProcessingConfiguration
from repro.io.jsonflow import load_flow_json
from repro.io.pdi import load_flow_pdi
from repro.io.xlm import load_flow_xlm
from repro.io.dot import flow_to_dot
from repro.viz.report import planning_report

DATA_DIR = Path(__file__).resolve().parent / "data"


def summarize(label: str, flow) -> None:
    print(
        f"{label:<28} operators={flow.node_count:<3} transitions={flow.edge_count:<3} "
        f"sources={len(flow.sources())} sinks={len(flow.sinks())} "
        f"longest_path={flow.longest_path_length()}"
    )


def main() -> None:
    tpch = load_flow_xlm(DATA_DIR / "tpch_refresh.xlm")
    purchases = load_flow_xlm(DATA_DIR / "s_purchases.xlm")
    tpcds = load_flow_pdi(DATA_DIR / "tpcds_sales.ktr")
    purchases_json = load_flow_json(DATA_DIR / "s_purchases.json")

    print("Imported logical ETL models:")
    summarize("tpch_refresh.xlm", tpch)
    summarize("s_purchases.xlm", purchases)
    summarize("tpcds_sales.ktr (PDI)", tpcds)
    summarize("s_purchases.json", purchases_json)

    # The two purchases documents describe the same process.
    assert purchases.structurally_equal(purchases_json)

    # A DOT rendering of the smallest flow, for graphviz users.
    print("\nGraphviz DOT of the purchases flow (first lines):")
    print("\n".join(flow_to_dot(purchases).splitlines()[:8]))

    # Plan the imported TPC-H process.
    planner = Planner(
        configuration=ProcessingConfiguration(
            pattern_budget=1, max_points_per_pattern=2, simulation_runs=2
        )
    )
    result = planner.plan(tpch)
    print()
    print(planning_report(result, max_listed=5))


if __name__ == "__main__":
    main()
