#!/usr/bin/env python
"""Load the YAML flow DSL and actually execute it.

Reads ``examples/flow.yaml`` (a hand-written purchases flow in the
compact YAML dialect of :mod:`repro.io.yamlflow`), executes it on the
always-available ``local`` dataframe backend with deterministic sampled
source data, and prints the per-node execution report.  The same flow
can be run from the command line with ``python tools/run_flow.py
examples/flow.yaml``.

Run with::

    python examples/run_yaml_flow.py
"""

from __future__ import annotations

from pathlib import Path

from repro.exec import FlowExecutor, RecoveryPolicy
from repro.io import load_flow_yaml

FLOW_PATH = Path(__file__).resolve().parent / "flow.yaml"


def main() -> None:
    flow = load_flow_yaml(FLOW_PATH)
    print(f"Loaded {flow.name!r}: {flow.node_count} operations, "
          f"{flow.edge_count} transitions")

    executor = FlowExecutor(
        backend="local",
        policy=RecoveryPolicy(max_retries=1, on_exhaustion="skip"),
        data_seed=7,
    )
    report = executor.execute(flow)

    print(f"Executed on backend {report.backend!r} in {report.elapsed_ms:.1f} ms")
    for run in report.node_runs:
        print(f"  {run.op_id:24s} {run.status:9s} "
              f"{run.rows_in:5d} -> {run.rows_out:5d} rows")
    print(f"Rows loaded into sinks: {report.rows_loaded}")


if __name__ == "__main__":
    main()
