#!/usr/bin/env python
"""Extending the palette with custom patterns on the TPC-DS workload (demo part P3).

The paper's third demo part guides users through defining their own Flow
Component Patterns, quality metrics and deployment policies.  This example
does all three programmatically on the TPC-DS sales flow:

* a custom ``MaskCustomerPII`` pattern (a cleansing step near the loads),
* a custom quality measure counting operations that touch customer data,
* a goal-driven deployment policy prioritising data quality and security.

Run with::

    python examples/tpcds_custom_patterns.py
"""

from __future__ import annotations

from repro import Planner, ProcessingConfiguration, QualityCharacteristic
from repro.etl.graph import ETLGraph
from repro.etl.operations import OperationKind
from repro.patterns.custom import CustomPatternSpec
from repro.patterns.registry import default_palette
from repro.quality.framework import Measure, default_registry
from repro.simulator.traces import TraceArchive
from repro.viz.report import planning_report
from repro.viz.tables import palette_table, render_table
from repro.workloads import tpcds_sales_flow


class CustomerDataExposure(Measure):
    """Custom measure: number of operations that process raw customer attributes.

    The fewer operations see unmasked customer data, the better the
    process scores on security.
    """

    name = "customer_data_exposure"
    description = "Operations processing unmasked customer attributes"
    characteristic = QualityCharacteristic.SECURITY
    higher_is_better = False
    unit = "operations"
    requires_trace = False
    scale = 10.0

    def compute(self, flow: ETLGraph, archive: TraceArchive | None = None) -> float:
        exposed = 0
        for op in flow.operations():
            names = set(op.output_schema.names)
            if {"c_first_name", "c_last_name", "c_email_address"} & names:
                if op.kind is not OperationKind.CLEANSE:
                    exposed += 1
        return float(exposed)


def main() -> None:
    flow = tpcds_sales_flow(scale=0.05)
    print(f"Initial flow: {flow.name} ({flow.node_count} operators)")

    # --- custom pattern ---------------------------------------------------
    palette = default_palette()
    palette.register_custom(
        CustomPatternSpec(
            name="MaskCustomerPII",
            description="Mask personally identifiable customer fields before loading",
            operation_kind=OperationKind.CLEANSE,
            improves=(QualityCharacteristic.SECURITY,),
            cost_per_tuple=0.01,
            operation_config={"fields": ["c_first_name", "c_last_name", "c_email_address"]},
            prefer_near_sources=False,
        )
    )
    print("\nPalette after registering the custom pattern (Fig. 6 extended):")
    print(render_table(palette_table(palette)))

    # --- custom measure ---------------------------------------------------
    registry = default_registry()
    registry.register(CustomerDataExposure())

    # --- custom (goal-driven) deployment policy ---------------------------
    configuration = ProcessingConfiguration(
        pattern_budget=2,
        max_points_per_pattern=2,
        simulation_runs=2,
        policy="goal_driven",
        goal_priorities={
            QualityCharacteristic.DATA_QUALITY: 1.0,
            QualityCharacteristic.SECURITY: 0.8,
            QualityCharacteristic.PERFORMANCE: 0.3,
        },
        skyline_characteristics=(
            QualityCharacteristic.DATA_QUALITY,
            QualityCharacteristic.SECURITY,
            QualityCharacteristic.PERFORMANCE,
        ),
    )
    planner = Planner(palette=palette, configuration=configuration, measures=registry)

    result = planner.plan(flow)
    print(planning_report(result, max_listed=8))

    custom_pattern_designs = [
        alt for alt in result.alternatives if "MaskCustomerPII" in alt.pattern_names
    ]
    print(f"Designs using the custom pattern: {len(custom_pattern_designs)}")
    if custom_pattern_designs:
        best = max(
            custom_pattern_designs,
            key=lambda alt: alt.profile.score(QualityCharacteristic.SECURITY),
        )
        exposure_before = result.baseline_profile.value("customer_data_exposure").value
        exposure_after = best.profile.value("customer_data_exposure").value
        print(f"Customer-data exposure (custom measure): "
              f"{exposure_before:.0f} -> {exposure_after:.0f} operations")


if __name__ == "__main__":
    main()
