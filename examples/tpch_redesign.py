#!/usr/bin/env python
"""Quality-aware redesign of the TPC-H refresh ETL process.

Reproduces the demo scenario of the paper on the TPC-H-based workload:
the logical model is exported to xLM and re-imported (the format the demo
loads), the planner generates alternative designs by combining up to two
Flow Component Patterns, user constraints discard designs that slow the
process down, and the Pareto skyline over performance / data quality /
reliability is reported together with the scatter-plot data (Fig. 4).

Run with::

    python examples/tpch_redesign.py
"""

from __future__ import annotations

from repro import (
    MeasureConstraint,
    Planner,
    ProcessingConfiguration,
    QualityCharacteristic,
)
from repro.io.xlm import flow_from_xlm, flow_to_xlm
from repro.viz.scatter import build_scatter_data, render_ascii_scatter, scatter_to_csv
from repro.viz.report import planning_report
from repro.workloads import tpch_refresh_flow


def main() -> None:
    # 1. Import the logical ETL model (round-tripped through xLM, as the
    #    paper's demo does with models exported from design tools).
    document = flow_to_xlm(tpch_refresh_flow(scale=0.1))
    flow = flow_from_xlm(document)
    print(f"Imported {flow.name!r} from xLM: {flow.node_count} operators, "
          f"{len(flow.sources())} sources, {len(flow.sinks())} loads")

    # 2. Baseline quality profile of the initial process.
    planner = Planner(
        configuration=ProcessingConfiguration(
            pattern_budget=2,
            max_points_per_pattern=2,
            simulation_runs=2,
            constraints=(
                # never accept a design that more than doubles the cycle time
                MeasureConstraint("process_cycle_time_ms", max_value=None),
            ),
        )
    )
    baseline = planner.evaluate_flow(flow)
    print("Baseline composite scores:")
    for characteristic, score in baseline.scores.items():
        print(f"  {characteristic.label:<15} {score:6.1f}")

    # 3. Full planning run.
    result = planner.plan(flow)
    print(planning_report(result, max_listed=8))

    # 4. Export the Fig. 4 scatter data for external plotting.
    points = build_scatter_data(result)
    csv = scatter_to_csv(points, result.characteristics)
    print("Scatter CSV (first 10 rows):")
    print("\n".join(csv.splitlines()[:10]))
    print()
    print(render_ascii_scatter(points, result.characteristics, skyline_only=True))

    # 5. Which patterns dominate the skyline?
    pattern_usage: dict[str, int] = {}
    for alternative in result.skyline:
        for name in alternative.pattern_names:
            pattern_usage[name] = pattern_usage.get(name, 0) + 1
    print("Pattern usage on the skyline:")
    for name, count in sorted(pattern_usage.items(), key=lambda item: -item[1]):
        print(f"  {name:<28} {count}")

    best_reliability = result.best_for(QualityCharacteristic.RELIABILITY)
    print(f"\nMost reliable design: {best_reliability.label} "
          f"({best_reliability.describe()})")


if __name__ == "__main__":
    main()
