#!/usr/bin/env python
"""Quickstart: redesign a small ETL flow with POIESIS.

Builds a small purchases ETL flow (the paper's Fig. 2 sub-process), runs
one planning cycle with the default palette and heuristic deployment
policy, prints the Pareto skyline of the generated alternatives, and shows
the Fig. 5-style measure comparison of the best-performing design.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Planner, ProcessingConfiguration, QualityCharacteristic
from repro.viz.bars import render_bar_chart, render_drilldown
from repro.viz.report import planning_report
from repro.workloads import purchases_flow


def main() -> None:
    # 1. The initial ETL flow: two purchase sources, a filter, an
    #    attribute projection, an expensive derive step and a fact load.
    flow = purchases_flow(rows_per_source=10_000)
    print(f"Initial flow: {flow.name} ({flow.node_count} operations, "
          f"{flow.edge_count} transitions)")
    print(f"  sources: {[op.name for op in flow.sources()]}")
    print(f"  sinks:   {[op.name for op in flow.sinks()]}")

    # 2. Configure the planner: one pattern per alternative, heuristic
    #    placement, three simulated runs per measure estimation.
    configuration = ProcessingConfiguration(
        pattern_budget=1,
        max_points_per_pattern=3,
        simulation_runs=3,
        policy="heuristic",
    )
    planner = Planner(configuration=configuration)

    # 3. Run the pipeline: pattern generation -> application -> measures.
    result = planner.plan(flow)
    print(planning_report(result))

    # 4. Inspect the best design for performance (Fig. 5 view).
    best = result.best_for(QualityCharacteristic.PERFORMANCE)
    comparison = result.comparison(best)
    print(render_bar_chart(comparison))
    print(render_drilldown(comparison, QualityCharacteristic.PERFORMANCE))


if __name__ == "__main__":
    main()
