#!/usr/bin/env python
"""Iterative, incremental redesign session (the paper's core usage loop).

POIESIS applies an iterative model: the planner generates and evaluates
alternatives, the user selects one from the skyline, the chosen patterns
are merged into the process, and a new cycle starts until the flow
satisfies the quality goals.  This example automates three such cycles on
the Fig. 2 purchases flow, alternating the quality goal each iteration
(performance, then reliability, then data quality), and prints how the
composite scores of the current flow evolve.

Run with::

    python examples/iterative_session.py
"""

from __future__ import annotations

from repro import ProcessingConfiguration, QualityCharacteristic, RedesignSession
from repro.io.jsonflow import flow_to_json
from repro.viz.tables import render_table
from repro.workloads import purchases_flow


GOALS = (
    QualityCharacteristic.PERFORMANCE,
    QualityCharacteristic.RELIABILITY,
    QualityCharacteristic.DATA_QUALITY,
)


def main() -> None:
    flow = purchases_flow(rows_per_source=10_000)
    session = RedesignSession(
        flow,
        configuration=ProcessingConfiguration(
            pattern_budget=1,
            max_points_per_pattern=3,
            simulation_runs=3,
        ),
    )

    history_rows = []
    profile = session.current_profile
    history_rows.append(
        {"iteration": 0, "goal": "-", "selected": "initial flow",
         **{c.value: f"{profile.score(c):6.1f}" for c in GOALS}}
    )

    for index, goal in enumerate(GOALS, start=1):
        iteration = session.iterate()
        chosen = session.select_best(goal)
        profile = chosen.profile
        history_rows.append(
            {
                "iteration": index,
                "goal": goal.label,
                "selected": chosen.describe()[:60],
                **{c.value: f"{profile.score(c):6.1f}" for c in GOALS},
            }
        )
        print(
            f"Iteration {index}: {len(iteration.result.alternatives)} alternatives, "
            f"{len(iteration.result.skyline)} on the skyline; adopted {chosen.label}"
        )

    print()
    print("Evolution of the composite scores across the session:")
    print(render_table(history_rows))

    print("Patterns merged into the final flow:")
    for record in session.current_flow.applied_patterns:
        print(f"  - {record}")

    final = session.current_flow
    print(f"\nFinal flow has {final.node_count} operations "
          f"(started with {flow.node_count}).")
    # Persist the redesigned model for downstream tools.
    document = flow_to_json(final)
    print(f"Redesigned model serialised to JSON ({len(document)} characters).")


if __name__ == "__main__":
    main()
