"""Golden-metric derivation and threshold gating (:mod:`repro.obs.golden`)."""

import pytest

from repro.obs.golden import GoldenThresholds, Violation, evaluate_golden, golden_metrics
from repro.obs.metrics import MetricsRegistry


def _snapshot_with_traffic() -> dict:
    registry = MetricsRegistry()
    registry.counter("cache.memory.hits").inc(9)
    registry.counter("cache.memory.misses").inc(1)
    registry.gauge("queue.depth").set(4)
    registry.gauge("fleet.workers_alive").set(2)
    histogram = registry.histogram("service.plan_seconds")
    for value in (0.1, 0.2, 0.3, 0.4):
        histogram.observe(value)
    return registry.snapshot()


class TestGoldenMetrics:
    def test_derives_all_signals_from_a_snapshot(self):
        golden = golden_metrics(_snapshot_with_traffic())
        assert golden["cache_hit_rate"] == pytest.approx(0.9)
        assert golden["queue_depth"] == 4.0
        assert golden["workers_alive"] == 2.0
        assert golden["plan_count"] == 4.0
        assert golden["plan_p50_seconds"] > 0
        assert golden["plan_p99_seconds"] >= golden["plan_p50_seconds"]

    def test_missing_signals_are_omitted_not_zeroed(self):
        assert golden_metrics(MetricsRegistry().snapshot()) == {}

    def test_accepts_a_full_metrics_payload(self):
        payload = {"server": "cache", "metrics": _snapshot_with_traffic()}
        golden = golden_metrics(payload)
        assert golden["cache_hit_rate"] == pytest.approx(0.9)

    def test_declared_golden_values_win_over_derived(self):
        payload = {
            "metrics": _snapshot_with_traffic(),
            "golden": {"cache_hit_rate": 0.42, "plan_p99_seconds": 1.5},
        }
        golden = golden_metrics(payload)
        assert golden["cache_hit_rate"] == 0.42
        assert golden["plan_p99_seconds"] == 1.5
        # signals the payload does not declare still derive
        assert golden["queue_depth"] == 4.0

    def test_hit_rate_sums_every_tier(self):
        registry = MetricsRegistry()
        registry.counter("cache.memory.hits").inc(1)
        registry.counter("cache.disk.hits").inc(1)
        registry.counter("cache.http.misses").inc(2)
        golden = golden_metrics(registry.snapshot())
        assert golden["cache_hit_rate"] == pytest.approx(0.5)


class TestEvaluateGolden:
    def test_healthy_snapshot_has_no_violations(self):
        assert evaluate_golden(_snapshot_with_traffic()) == []

    def test_floor_violation(self):
        registry = MetricsRegistry()
        registry.counter("cache.memory.hits").inc(1)
        registry.counter("cache.memory.misses").inc(9)
        violations = evaluate_golden(
            registry.snapshot(), GoldenThresholds(min_cache_hit_rate=0.5)
        )
        assert [v.metric for v in violations] == ["cache_hit_rate"]
        assert violations[0].comparison == ">="
        assert "cache_hit_rate" in violations[0].describe()

    def test_ceiling_violation(self):
        registry = MetricsRegistry()
        registry.gauge("queue.depth").set(500)
        violations = evaluate_golden(
            registry.snapshot(), GoldenThresholds(max_queue_depth=100)
        )
        assert [v.metric for v in violations] == ["queue_depth"]
        assert violations[0].comparison == "<="

    def test_none_threshold_disables_the_gate(self):
        registry = MetricsRegistry()
        registry.gauge("queue.depth").set(10**9)
        thresholds = GoldenThresholds(max_queue_depth=None, min_workers_alive=None)
        assert evaluate_golden(registry.snapshot(), thresholds) == []

    def test_missing_signals_are_skipped_not_failed(self):
        # an empty snapshot reports nothing, so nothing can violate
        assert evaluate_golden(MetricsRegistry().snapshot()) == []

    def test_accepts_an_already_derived_golden_dict(self):
        violations = evaluate_golden(
            {"cache_hit_rate": 0.1, "workers_alive": 0.0},
            GoldenThresholds(min_cache_hit_rate=0.5, min_workers_alive=1.0),
        )
        assert {v.metric for v in violations} == {"cache_hit_rate", "workers_alive"}

    def test_violation_is_a_frozen_value_object(self):
        violation = Violation("queue_depth", 200.0, 100.0, "<=")
        with pytest.raises(AttributeError):
            violation.value = 0.0
