"""Registry behaviour under concurrency: exact counts, untorn snapshots.

The registry's contract is one lock per registry: writers from any
number of threads lose no increments, and a concurrent reader never
observes a *torn* snapshot -- a histogram whose ``count`` disagrees
with its bucket sum, or a counter that went backwards.  These tests
hammer the registry directly from raw threads and indirectly through
the planner's thread-pool evaluator.
"""

import threading

from repro.core import Planner
from repro.obs.metrics import MetricsRegistry

from tests.conftest import fast_planner_config


def test_thread_hammer_loses_no_increments():
    registry = MetricsRegistry()
    threads, per_thread = 8, 2000

    def hammer() -> None:
        counter = registry.counter("hits")
        histogram = registry.histogram("lat")
        for i in range(per_thread):
            counter.inc()
            histogram.observe(0.0001 * (i % 50))

    workers = [threading.Thread(target=hammer) for _ in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()

    assert registry.counter("hits").value == threads * per_thread
    data = registry.histogram("lat").as_dict()
    assert data["count"] == threads * per_thread
    assert data["count"] == sum(count for _, count in data["buckets"])


def test_concurrent_snapshots_are_monotone_and_never_torn():
    registry = MetricsRegistry()
    stop = threading.Event()
    problems: list[str] = []

    def write() -> None:
        counter = registry.counter("hits")
        histogram = registry.histogram("lat")
        while not stop.is_set():
            counter.inc()
            histogram.observe(0.003)

    def read() -> None:
        last_count = 0
        while not stop.is_set():
            snapshot = registry.snapshot()
            counters = snapshot["counters"]
            histograms = snapshot["histograms"]
            if "hits" not in counters:
                continue
            if counters["hits"] < last_count:
                problems.append(
                    f"counter went backwards: {counters['hits']} < {last_count}"
                )
            last_count = counters["hits"]
            data = histograms["lat"]
            bucket_sum = sum(count for _, count in data["buckets"])
            if data["count"] != bucket_sum:
                problems.append(
                    f"torn histogram: count {data['count']} != bucket sum {bucket_sum}"
                )

    writers = [threading.Thread(target=write) for _ in range(4)]
    readers = [threading.Thread(target=read) for _ in range(2)]
    for thread in writers + readers:
        thread.start()
    timer = threading.Timer(0.5, stop.set)
    timer.start()
    for thread in writers + readers:
        thread.join()
    timer.cancel()
    assert problems == []


def test_thread_pool_evaluator_hammers_one_registry(linear_flow):
    """A metrics-enabled planner with a worker pool records consistently."""
    registry = MetricsRegistry()
    planner = Planner(
        configuration=fast_planner_config(
            metrics_enabled=True,
            metrics_registry=registry,
            parallel_workers=4,
            backend="thread",
            eval_batch_size=4,
        )
    )
    result = planner.plan(linear_flow)

    snapshot = registry.snapshot()
    histograms = snapshot["histograms"]
    # one campaign span, with every phase inside it (screen only runs
    # when a screening beam is configured)
    assert histograms["planner.plan_seconds"]["count"] == 1
    for phase in ("generate", "estimate", "rank"):
        assert histograms[f"planner.phase.{phase}_seconds"]["count"] == 1, phase
    # worker threads recorded one estimation span per evaluated profile
    estimates = histograms["evaluator.estimate_seconds"]
    assert estimates["count"] > 0
    # untorn after the concurrent campaign: counts match bucket sums
    for name, data in histograms.items():
        assert data["count"] == sum(count for _, count in data["buckets"]), name
    counters = snapshot["counters"]
    assert counters["planner.plans"] == 1
    assert counters["planner.alternatives_evaluated"] == (
        len(result.alternatives) + result.discarded_by_constraints
    )


def test_plans_identical_with_and_without_metrics(linear_flow):
    """Observability must never change what gets planned."""
    plain = Planner(configuration=fast_planner_config())
    observed = Planner(
        configuration=fast_planner_config(
            metrics_enabled=True, metrics_registry=MetricsRegistry()
        )
    )
    assert plain.plan(linear_flow).fingerprint() == observed.plan(linear_flow).fingerprint()
