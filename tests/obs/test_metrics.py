"""Instrument semantics of the metrics core (:mod:`repro.obs.metrics`)."""

import pickle
import random
import time
from types import SimpleNamespace

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS,
    MetricsRegistry,
    Timer,
    default_registry,
    enabled_registry,
    maybe_timer,
    render_prometheus,
)


class TestCounter:
    def test_increments_accumulate(self):
        registry = MetricsRegistry()
        counter = registry.counter("a.hits")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_same_name_same_instrument(self):
        registry = MetricsRegistry()
        registry.counter("a.hits").inc()
        registry.counter("a.hits").inc()
        assert registry.counter("a.hits").value == 2

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("a.hits").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("queue.depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13


class TestHistogram:
    def test_count_sum_min_max(self):
        histogram = MetricsRegistry().histogram("lat")
        for value in (0.001, 0.01, 0.1):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(0.111)
        data = histogram.as_dict()
        assert data["min"] == pytest.approx(0.001)
        assert data["max"] == pytest.approx(0.1)

    def test_count_equals_bucket_sum(self):
        histogram = MetricsRegistry().histogram("lat")
        for _ in range(500):
            histogram.observe(random.random())
        data = histogram.as_dict()
        assert data["count"] == sum(count for _, count in data["buckets"]) == 500

    def test_quantiles_within_one_bucket_width(self):
        """The documented accuracy bound: off by at most one bucket."""
        registry = MetricsRegistry()
        histogram = registry.histogram("lat")
        values = sorted(random.Random(7).uniform(0.0002, 2.0) for _ in range(2000))
        for value in values:
            histogram.observe(value)
        for q in (0.50, 0.95, 0.99):
            exact = values[min(len(values) - 1, int(q * len(values)))]
            estimate = histogram.quantile(q)
            # locate the bucket holding the exact value; the estimate
            # must land within that bucket's [lower, upper] span
            bounds = list(histogram.bounds)
            upper = next((b for b in bounds if exact <= b), values[-1])
            index = bounds.index(upper) if upper in bounds else len(bounds)
            lower = bounds[index - 1] if index > 0 else 0.0
            assert lower <= estimate <= max(upper, values[-1])

    def test_quantiles_clamped_to_observed_range(self):
        histogram = MetricsRegistry().histogram("lat")
        histogram.observe(0.007)
        for q in (0.0, 0.5, 1.0):
            assert histogram.quantile(q) == pytest.approx(0.007)

    def test_overflow_bucket_catches_everything_above_the_last_bound(self):
        histogram = MetricsRegistry().histogram("lat", bounds=(1.0,))
        histogram.observe(1000.0)
        data = histogram.as_dict()
        assert data["buckets"] == [[1.0, 0], ["+Inf", 1]]
        assert data["max"] == 1000.0

    def test_empty_histogram_quantile_is_zero(self):
        assert MetricsRegistry().histogram("lat").quantile(0.99) == 0.0

    def test_quantile_argument_validated(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("lat").quantile(1.5)


class TestTimer:
    def test_timer_observes_elapsed(self):
        registry = MetricsRegistry()
        with registry.timer("span") as span:
            time.sleep(0.001)
        assert span.elapsed > 0
        assert registry.histogram("span").count == 1

    def test_maybe_timer_without_registry_measures_but_records_nothing(self):
        with maybe_timer(None, "span") as span:
            time.sleep(0.001)
        assert isinstance(span, Timer)
        assert span.elapsed > 0


class TestSnapshot:
    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(7)
        registry.histogram("h").observe(0.01)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 2}
        assert snapshot["gauges"] == {"g": 7}
        assert snapshot["histograms"]["h"]["count"] == 1
        # as_dict is the repo-wide stats-contract alias
        assert registry.as_dict() == snapshot

    def test_drain_returns_and_resets(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        drained = registry.drain()
        assert drained["counters"] == {"c": 3}
        assert registry.snapshot()["counters"] == {}


class TestMerge:
    def test_merge_adds_counters_and_histograms_overwrites_gauges(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        a.gauge("g").set(1)
        a.histogram("h").observe(0.01)
        b.counter("c").inc(2)
        b.gauge("g").set(9)
        b.histogram("h").observe(0.02)
        a.merge(b)
        snapshot = a.snapshot()
        assert snapshot["counters"]["c"] == 3
        assert snapshot["gauges"]["g"] == 9
        merged = snapshot["histograms"]["h"]
        assert merged["count"] == 2
        assert merged["sum"] == pytest.approx(0.03)
        assert merged["min"] == pytest.approx(0.01)
        assert merged["max"] == pytest.approx(0.02)
        assert merged["count"] == sum(count for _, count in merged["buckets"])

    def test_merge_accepts_snapshot_dicts(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("c").inc(5)
        b.histogram("h").observe(0.5)
        a.merge(b.snapshot())
        assert a.counter("c").value == 5
        assert a.histogram("h").count == 1

    def test_merge_round_trip_equals_direct_observation(self):
        """merge(drain()) folds worker deltas without loss or duplication."""
        parent, worker = MetricsRegistry(), MetricsRegistry()
        for value in (0.001, 0.05, 3.0):
            worker.histogram("h").observe(value)
            worker.counter("c").inc()
        parent.merge(worker.drain())
        parent.merge(worker.drain())  # second drain is empty: no duplication
        assert parent.counter("c").value == 3
        assert parent.histogram("h").count == 3
        assert parent.histogram("h").sum == pytest.approx(3.051)

    def test_merge_mismatched_bucket_bounds_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", bounds=(1.0, 2.0)).observe(0.5)
        b.histogram("h", bounds=(9.0,)).observe(0.5)
        with pytest.raises(ValueError, match="bucket bounds"):
            a.merge(b)


class TestPickling:
    def test_plain_registry_pickles_as_empty_handle(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(100)
        clone = pickle.loads(pickle.dumps(registry))
        assert isinstance(clone, MetricsRegistry)
        assert clone.snapshot()["counters"] == {}

    def test_default_registry_pickles_to_the_process_default(self):
        registry = default_registry()
        clone = pickle.loads(pickle.dumps(registry))
        assert clone is default_registry()


class TestEnabledRegistry:
    def test_none_configuration_disables(self):
        assert enabled_registry(None) is None

    def test_disabled_configuration_disables(self):
        assert enabled_registry(SimpleNamespace(metrics_enabled=False)) is None

    def test_enabled_without_registry_uses_the_default(self):
        configuration = SimpleNamespace(metrics_enabled=True, metrics_registry=None)
        assert enabled_registry(configuration) is default_registry()

    def test_enabled_with_explicit_registry_uses_it(self):
        registry = MetricsRegistry()
        configuration = SimpleNamespace(metrics_enabled=True, metrics_registry=registry)
        assert enabled_registry(configuration) is registry


class TestPrometheusRendering:
    def test_all_instrument_kinds_render(self):
        registry = MetricsRegistry()
        registry.counter("cache.hits").inc(3)
        registry.gauge("queue.depth").set(2)
        registry.histogram("plan_seconds", bounds=(1.0,)).observe(0.5)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE repro_cache_hits counter" in text
        assert "repro_cache_hits 3" in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "repro_queue_depth 2" in text
        assert "# TYPE repro_plan_seconds histogram" in text
        assert 'repro_plan_seconds_bucket{le="1.0"} 1' in text
        assert 'repro_plan_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_plan_seconds_sum 0.5" in text
        assert "repro_plan_seconds_count 1" in text
        assert text.endswith("\n")

    def test_bucket_series_is_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", bounds=(1.0, 2.0))
        for value in (0.5, 1.5, 5.0):
            histogram.observe(value)
        text = render_prometheus(registry.snapshot())
        assert 'repro_h_bucket{le="1.0"} 1' in text
        assert 'repro_h_bucket{le="2.0"} 2' in text
        assert 'repro_h_bucket{le="+Inf"} 3' in text

    def test_names_are_sanitised(self):
        registry = MetricsRegistry()
        registry.counter("cache.memory.get-many/total").inc()
        text = render_prometheus(registry.snapshot())
        assert "repro_cache_memory_get_many_total 1" in text


def test_default_latency_bounds_are_sorted_and_positive():
    assert list(DEFAULT_LATENCY_BOUNDS) == sorted(DEFAULT_LATENCY_BOUNDS)
    assert all(bound > 0 for bound in DEFAULT_LATENCY_BOUNDS)
