"""Measured top-k calibration: spearman, planner/session hooks, knobs."""

from __future__ import annotations

import pytest

from repro.core.configuration import ProcessingConfiguration
from repro.core.planner import Planner
from repro.core.session import RedesignSession
from repro.exec import CalibrationReport, MeasuredRun, execute_top_k, spearman_correlation
from repro.workloads import calibration_configuration, tpch_refresh_flow


def _fast_planner() -> Planner:
    return Planner(
        configuration=calibration_configuration(
            pattern_budget=1, seed=11, simulation_runs=1, max_alternatives=30
        )
    )


# ----------------------------------------------------------------------
# Spearman
# ----------------------------------------------------------------------


def test_spearman_perfect_agreement():
    assert spearman_correlation([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)


def test_spearman_perfect_disagreement():
    assert spearman_correlation([1, 2, 3, 4], [40, 30, 20, 10]) == pytest.approx(-1.0)


def test_spearman_handles_ties_with_average_ranks():
    value = spearman_correlation([1.0, 1.0, 2.0], [5.0, 5.0, 9.0])
    assert value == pytest.approx(1.0)


def test_spearman_constant_side_is_zero():
    assert spearman_correlation([1, 1, 1], [1, 2, 3]) == 0.0


def test_spearman_validates_input():
    with pytest.raises(ValueError):
        spearman_correlation([1, 2], [1, 2, 3])
    with pytest.raises(ValueError):
        spearman_correlation([1], [1])


def test_spearman_matches_scipy():
    scipy_stats = pytest.importorskip("scipy.stats")
    xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
    ys = [2.0, 7.0, 1.0, 8.0, 2.0, 8.0, 1.0, 8.0]
    expected = scipy_stats.spearmanr(xs, ys).statistic
    assert spearman_correlation(xs, ys) == pytest.approx(expected)


def test_calibration_report_rankings():
    report = CalibrationReport(backend="local", measure="m", data_seed=7, repeats=1)
    report.runs = [
        MeasuredRun(label="a", simulated=3.0, measured_ms=30.0),
        MeasuredRun(label="b", simulated=1.0, measured_ms=10.0),
        MeasuredRun(label="c", simulated=2.0, measured_ms=20.0),
    ]
    assert report.simulated_ranking == ["b", "c", "a"]
    assert report.measured_ranking == ["b", "c", "a"]
    assert report.spearman == pytest.approx(1.0)
    payload = report.to_dict()
    assert payload["pool"] == "skyline"
    assert payload["spearman"] == pytest.approx(1.0)


# ----------------------------------------------------------------------
# execute_top_k
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def planned():
    return _fast_planner().plan(tpch_refresh_flow(scale=0.01))


def test_execute_top_k_validation(planned):
    with pytest.raises(ValueError, match="k >= 2"):
        execute_top_k(planned, k=1)
    with pytest.raises(ValueError, match="repeats"):
        execute_top_k(planned, repeats=0)
    with pytest.raises(ValueError, match="pool"):
        execute_top_k(planned, pool="best")


def test_execute_top_k_does_not_mutate_plans(planned):
    fingerprint = planned.fingerprint()
    report = execute_top_k(planned, k=3, repeats=1)
    assert planned.fingerprint() == fingerprint
    assert len(report.runs) == 3
    assert all(run.measured_ms > 0 for run in report.runs)
    # Simulated values arrive sorted ascending (the planner's ranking).
    simulated = [run.simulated for run in report.runs]
    assert simulated == sorted(simulated)


def test_execute_top_k_pools_differ(planned):
    skyline = execute_top_k(planned, k=3, repeats=1, pool="skyline")
    everything = execute_top_k(planned, k=3, repeats=1, pool="all")
    assert skyline.pool == "skyline"
    assert everything.pool == "all"
    # The all-pool draws the global simulated best; the skyline pool may
    # not contain it, but both must execute exactly k alternatives.
    assert len(skyline.runs) == len(everything.runs) == 3


# ----------------------------------------------------------------------
# Planner / session hooks
# ----------------------------------------------------------------------


def test_planner_execute_top_k_reuses_planning_result(planned):
    planner = _fast_planner()
    result, report = planner.execute_top_k(
        tpch_refresh_flow(scale=0.01), k=2, repeats=1, planning_result=planned
    )
    assert result is planned
    assert len(report.runs) == 2
    assert report.backend == "local"


def test_session_execute_top_k_records_iteration():
    session = RedesignSession(
        tpch_refresh_flow(scale=0.01), planner=_fast_planner()
    )
    report = session.execute_top_k(k=2, repeats=1)
    assert session.iteration_count == 1
    assert len(report.runs) == 2
    # A second call reuses the recorded planning result for the same flow.
    again = session.execute_top_k(k=2, repeats=1)
    assert session.iteration_count == 1
    assert [r.label for r in again.runs] == [r.label for r in report.runs]


# ----------------------------------------------------------------------
# Configuration knob
# ----------------------------------------------------------------------


def test_executor_backend_knob_validation():
    assert ProcessingConfiguration().executor_backend == "local"
    assert ProcessingConfiguration(executor_backend="pandas").executor_backend == "pandas"
    with pytest.raises(ValueError, match="executor_backend"):
        ProcessingConfiguration(executor_backend="dask")
