"""Compiler and executor behaviour: plans, determinism, error routing.

The recovery matrix mirrors the paper's reliability patterns: a node
covered by an upstream ``AddCheckpoint`` savepoint may retry (replaying
the persisted intermediate), and exhausted retries route to the
configured exhaustion branch -- ``raise`` (default), ``skip`` (empty
frame downstream) or ``dead_letter`` (recorded on the report) -- instead
of tearing the whole run down node-by-node.
"""

from __future__ import annotations

import pytest

from repro.core.configuration import ProcessingConfiguration
from repro.core.planner import Planner
from repro.etl.builder import FlowBuilder
from repro.etl.operations import Operation, OperationKind
from repro.etl.schema import DataType, Field, Schema
from repro.exec import (
    BackendUnavailableError,
    CompileError,
    ExecutionError,
    FlowExecutor,
    RecoveryPolicy,
    compile_flow,
    create_backend,
)
from repro.workloads import calibration_configuration, purchases_flow, tpch_refresh_flow


def _schema() -> Schema:
    return Schema.of(
        Field("id", DataType.INTEGER, nullable=False, key=True),
        Field("value", DataType.INTEGER, nullable=True),
    )


def _faulty_flow(fail_times: int, with_checkpoint: bool):
    """extract -> [checkpoint] -> faulty derive -> load."""
    builder = FlowBuilder("faulty")
    src = builder.extract_table("src", schema=_schema(), rows=60, null_rate=0.1)
    upstream = src
    if with_checkpoint:
        upstream = builder.add(
            OperationKind.CHECKPOINT, "cp", config={"savepoint": "sp"}, after=src
        )
    faulty = builder.derive(
        "faulty", expressions={"twice": "value * 2"}, after=upstream
    )
    faulty.config["fail_times"] = fail_times
    builder.load_table("sink", after=faulty)
    return builder.build()


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------


def test_compile_assigns_slots_and_savepoint_cover():
    builder = FlowBuilder("routed")
    src = builder.extract_table("src", schema=_schema(), rows=40)
    checkpoint = builder.add(
        OperationKind.CHECKPOINT, "cp", config={"savepoint": "sp"}, after=src
    )
    split = builder.split("split", outputs=2, after=checkpoint)
    builder.load_table("sink_a", after=split)
    builder.load_table("sink_b", after=split)
    plan = compile_flow(builder.build())

    assert plan.node("split").fanout == 2
    slots = sorted(
        plan.node(sink).inputs[0][1] for sink in ("sink_a", "sink_b")
    )
    assert slots == [0, 1], "each split successor must read its own output slot"
    assert plan.savepoint_cover.get("split") == "cp"
    assert plan.savepoint_cover.get("sink_a") == "cp"
    assert plan.savepoint_cover.get("src") is None
    assert sorted(plan.sink_ids) == ["sink_a", "sink_b"]


def test_compile_rejects_unsupported_kinds():
    builder = FlowBuilder("pivoting")
    src = builder.extract_table("src", schema=_schema(), rows=10)
    pivot = builder.add(OperationKind.PIVOT, "pivot", after=src)
    builder.load_table("sink", after=pivot)
    with pytest.raises(CompileError, match="pivot"):
        compile_flow(builder.build())


def test_compile_rejects_empty_flow():
    from repro.etl.graph import ETLGraph

    with pytest.raises(CompileError):
        compile_flow(ETLGraph("empty"))


# ----------------------------------------------------------------------
# Execution of the shipped workloads
# ----------------------------------------------------------------------


def test_tpch_flow_executes_deterministically():
    flow = tpch_refresh_flow(scale=0.02)
    first = FlowExecutor(data_seed=7).execute(flow)
    second = FlowExecutor(data_seed=7).execute(flow)
    assert first.rows_loaded > 0
    assert first.frame_bytes() == second.frame_bytes()
    assert set(first.statuses.values()) == {"ok"}


def test_purchases_flow_executes():
    report = FlowExecutor(data_seed=7).execute(purchases_flow(rows_per_source=500))
    assert set(report.statuses.values()) == {"ok"}


def test_different_data_seeds_differ():
    flow = tpch_refresh_flow(scale=0.02)
    first = FlowExecutor(data_seed=7).execute(flow)
    second = FlowExecutor(data_seed=8).execute(flow)
    assert first.frame_bytes() != second.frame_bytes()


def test_planned_alternatives_all_execute():
    """Every alternative the planner produces must be executable."""
    flow = tpch_refresh_flow(scale=0.01)
    planner = Planner(
        configuration=calibration_configuration(
            pattern_budget=1, seed=11, simulation_runs=1, max_alternatives=30
        )
    )
    result = planner.plan(flow)
    assert result.alternatives
    executor = FlowExecutor(data_seed=7)
    for alternative in result.alternatives:
        report = executor.execute(alternative.flow)
        assert report.rows_loaded >= 0
        assert not report.dead_letters


def test_join_orientation_is_column_resolved():
    """Swapping join predecessors must not change the joined result.

    Pattern application copies reorder predecessor lists wholesale, so
    input order is not semantic: the probe side is resolved from which
    frame actually carries the join key.
    """
    def build(swapped: bool):
        builder = FlowBuilder("orient")
        orders = builder.extract_table(
            "orders",
            schema=Schema.of(
                Field("o_id", DataType.INTEGER, nullable=False, key=True),
                Field("cust", DataType.INTEGER, nullable=True),
            ),
            rows=50,
        )
        customers = builder.extract_table(
            "customers",
            schema=Schema.of(
                Field("cust", DataType.INTEGER, nullable=False, key=True),
                Field("region", DataType.STRING, nullable=True),
            ),
            rows=30,
        )
        pair = [customers, orders] if swapped else [orders, customers]
        join = builder.add(
            OperationKind.JOIN, "join", config={"on": ["cust"]}, after=pair
        )
        builder.load_table("sink", after=join)
        return builder.build()

    straight = FlowExecutor(data_seed=5).execute(build(False))
    swapped = FlowExecutor(data_seed=5).execute(build(True))
    assert straight.rows_loaded == swapped.rows_loaded > 0


# ----------------------------------------------------------------------
# Recovery routing
# ----------------------------------------------------------------------


def test_checkpointed_fault_recovers():
    report = FlowExecutor(data_seed=7).execute(_faulty_flow(1, with_checkpoint=True))
    assert report.statuses["faulty"] == "recovered"
    assert report.node_runs[-1].status == "ok"
    assert report.rows_loaded > 0
    clean = FlowExecutor(data_seed=7).execute(_faulty_flow(0, with_checkpoint=True))
    assert report.frame_bytes() == clean.frame_bytes(), (
        "recovery must replay the savepoint, not change the data"
    )


def test_unpatterned_fault_raises():
    with pytest.raises(ExecutionError, match="faulty"):
        FlowExecutor(data_seed=7).execute(_faulty_flow(1, with_checkpoint=False))


def test_exhausted_retries_raise_by_default():
    with pytest.raises(ExecutionError):
        FlowExecutor(
            policy=RecoveryPolicy(max_retries=1), data_seed=7
        ).execute(_faulty_flow(5, with_checkpoint=True))


def test_exhaustion_skip_completes_with_empty_branch():
    executor = FlowExecutor(
        policy=RecoveryPolicy(max_retries=0, on_exhaustion="skip"), data_seed=7
    )
    report = executor.execute(_faulty_flow(5, with_checkpoint=True))
    assert report.statuses["faulty"] == "skipped"
    assert report.rows_loaded == 0


def test_exhaustion_dead_letter_records_the_failure():
    executor = FlowExecutor(
        policy=RecoveryPolicy(max_retries=0, on_exhaustion="dead_letter"), data_seed=7
    )
    report = executor.execute(_faulty_flow(5, with_checkpoint=True))
    assert report.statuses["faulty"] == "dead_letter"
    assert "faulty" in report.dead_letters
    entry = report.dead_letters["faulty"]
    assert entry["rows_in"] > 0
    assert "injected fault" in entry["error"] or "fault" in entry["error"]


def test_recovery_policy_validation():
    with pytest.raises(ValueError):
        RecoveryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RecoveryPolicy(on_exhaustion="explode")


# ----------------------------------------------------------------------
# Backend registry
# ----------------------------------------------------------------------


def test_create_backend_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown"):
        create_backend("dask")


def test_unavailable_backend_raises_with_install_hint():
    from repro.exec import available_backends

    unavailable = [name for name, ok in available_backends().items() if not ok]
    if not unavailable:  # pragma: no cover - full environment
        pytest.skip("all optional backends installed")
    with pytest.raises(BackendUnavailableError, match="pip install"):
        create_backend(unavailable[0])


def test_report_to_dict_is_json_friendly():
    import json

    report = FlowExecutor(data_seed=7).execute(_faulty_flow(0, with_checkpoint=True))
    payload = json.loads(json.dumps(report.to_dict()))
    assert payload["flow"] == "faulty"
    assert payload["backend"] == "local"
    assert {run["op_id"] for run in payload["nodes"]} >= {"src", "faulty", "sink"}
