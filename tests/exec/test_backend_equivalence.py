"""Differential conformance: every operator, pandas/polars vs. local.

The ``local`` pure-Python backend is the executable semantics reference;
the optional native backends must be drop-in replacements.  For every
supported operator kind this module builds a seeded micro-flow, executes
it on ``local`` and on each optional backend, and asserts the loaded
frames are value-identical after canonicalisation (row order and dtype
representation are not semantics: rows are compared sorted, numpy
scalars unwrapped, NaN treated as null, floats within 1e-9 relative).

The pandas and polars arms auto-skip with an explicit reason when the
library is not installed (``pip install poiesis-repro[pandas]`` /
``[polars]`` enables them); the matrix itself runs everywhere because
the local arm doubles as a self-check that each micro-flow executes and
loads rows at all.
"""

from __future__ import annotations

import pytest

from repro.etl.builder import FlowBuilder
from repro.etl.operations import OperationKind
from repro.etl.schema import DataType, Field, Schema
from repro.exec import (
    FlowExecutor,
    available_backends,
    canonical_rows,
    rows_approximately_equal,
)

_AVAILABLE = available_backends()

requires_pandas = pytest.mark.skipif(
    not _AVAILABLE.get("pandas", False),
    reason="pandas is not installed (pip install poiesis-repro[pandas])",
)
requires_polars = pytest.mark.skipif(
    not _AVAILABLE.get("polars", False),
    reason="polars is not installed (pip install poiesis-repro[polars])",
)

OPTIONAL_BACKENDS = [
    pytest.param("pandas", marks=[requires_pandas, pytest.mark.requires_pandas]),
    pytest.param("polars", marks=[requires_polars, pytest.mark.requires_polars]),
]


def _schema() -> Schema:
    return Schema.of(
        Field("id", DataType.INTEGER, nullable=False, key=True),
        Field("value", DataType.INTEGER, nullable=True),
        Field("label", DataType.STRING, nullable=True),
    )


def _source(builder: FlowBuilder, name: str = "src", rows: int = 120):
    """A dirty seeded source: nulls, duplicates and error-marked cells."""
    return builder.extract_table(
        name,
        schema=_schema(),
        rows=rows,
        null_rate=0.1,
        duplicate_rate=0.08,
        error_rate=0.05,
    )


def _unary(kind: OperationKind, config: dict):
    def build() -> object:
        builder = FlowBuilder(f"eq_{kind.value}")
        src = _source(builder)
        op = builder.add(kind, kind.value, config=config, after=src)
        builder.load_table("sink", after=op)
        return builder.build()

    return build


def _binary(kind: OperationKind, config: dict):
    def build() -> object:
        builder = FlowBuilder(f"eq_{kind.value}")
        left = _source(builder, "left_src", rows=90)
        right = _source(builder, "right_src", rows=70)
        op = builder.add(kind, kind.value, config=config, after=[left, right])
        builder.load_table("sink", after=op)
        return builder.build()

    return build


def _router(kind: OperationKind, config: dict):
    def build() -> object:
        builder = FlowBuilder(f"eq_{kind.value}")
        src = _source(builder)
        op = builder.add(kind, kind.value, config=config, after=src)
        builder.load_table("sink_a", after=op)
        builder.load_table("sink_b", after=op)
        return builder.build()

    return build


def _lookup_flow() -> object:
    builder = FlowBuilder("eq_lookup")
    src = _source(builder, "facts", rows=90)
    reference = builder.extract_table(
        "dim_labels",
        schema=Schema.of(
            Field("value", DataType.INTEGER, nullable=False, key=True),
            Field("category", DataType.STRING, nullable=True),
        ),
        rows=40,
    )
    lookup = builder.lookup(
        "enrich", reference="dim_labels", on=["value"], after=[src, reference]
    )
    builder.load_table("sink", after=lookup)
    return builder.build()


def _checkpoint_flow() -> object:
    builder = FlowBuilder("eq_checkpoint")
    src = _source(builder)
    checkpoint = builder.add(
        OperationKind.CHECKPOINT, "persist", config={"savepoint": "eq_sp"}, after=src
    )
    builder.load_table("sink", after=checkpoint)
    return builder.build()


#: Operator kind -> zero-argument micro-flow factory.  Together these
#: cover every executable operator of the backend dispatch table (PIVOT
#: is deliberately unsupported and covered by the compiler tests).
OPERATOR_FLOWS = {
    "filter": _unary(OperationKind.FILTER, {"predicate": "value > 8"}),
    "filter_null_compare": _unary(OperationKind.FILTER, {"predicate": "label != null"}),
    "project": _unary(OperationKind.PROJECT, {"keep": ["id", "value"]}),
    "derive": _unary(
        OperationKind.DERIVE,
        {"expressions": {"total": "value * 2 + 1", "big": "value > 10"}},
    ),
    "rename": _unary(OperationKind.RENAME, {"renames": {"value": "amount"}}),
    "convert": _unary(OperationKind.CONVERT, {"conversions": {"value": "decimal(12,2)"}}),
    "surrogate_key": _unary(OperationKind.SURROGATE_KEY, {"key_field": "sk"}),
    "slowly_changing_dim": _unary(OperationKind.SLOWLY_CHANGING_DIM, {}),
    "aggregate": _unary(
        OperationKind.AGGREGATE,
        {"group_by": ["label"], "aggregations": {"value": "sum", "id": "count"}},
    ),
    "aggregate_default": _unary(OperationKind.AGGREGATE, {"group_by": ["label"]}),
    "sort": _unary(OperationKind.SORT, {"by": ["value", "id"]}),
    "deduplicate": _unary(OperationKind.DEDUPLICATE, {"keys": ["id"]}),
    "filter_nulls": _unary(OperationKind.FILTER_NULLS, {}),
    "crosscheck": _unary(OperationKind.CROSSCHECK, {}),
    "validate": _unary(OperationKind.VALIDATE, {}),
    "cleanse": _unary(OperationKind.CLEANSE, {}),
    "join": _binary(OperationKind.JOIN, {"on": ["id"]}),
    "union": _binary(OperationKind.UNION, {}),
    "merge": _binary(OperationKind.MERGE, {}),
    "diff": _binary(OperationKind.DIFF, {}),
    "lookup": _lookup_flow,
    "split": _router(OperationKind.SPLIT, {"outputs": 2}),
    "router": _router(OperationKind.ROUTER, {"outputs": 2}),
    "partition": _router(OperationKind.PARTITION, {"key": "id", "partitions": 2}),
    "replicate": _router(OperationKind.REPLICATE, {}),
    "checkpoint": _checkpoint_flow,
    "passthrough": _unary(OperationKind.ENCRYPT, {}),
}


def _outputs(flow, backend: str) -> dict[str, dict[str, list]]:
    return FlowExecutor(backend=backend, data_seed=13).execute(flow).outputs


@pytest.mark.parametrize("operator", sorted(OPERATOR_FLOWS))
def test_operator_executes_on_local(operator: str):
    """Each micro-flow must execute and load rows on the reference backend."""
    outputs = _outputs(OPERATOR_FLOWS[operator](), "local")
    assert outputs, f"{operator}: no sink output captured"
    total = sum(
        max((len(v) for v in columns.values()), default=0)
        for columns in outputs.values()
    )
    assert total > 0, f"{operator}: sinks received no rows"


@pytest.mark.parametrize("backend", OPTIONAL_BACKENDS)
@pytest.mark.parametrize("operator", sorted(OPERATOR_FLOWS))
def test_operator_matches_local(operator: str, backend: str):
    """Native backends must be value-identical to the local reference."""
    flow = OPERATOR_FLOWS[operator]()
    reference = _outputs(flow, "local")
    candidate = _outputs(flow, backend)
    assert sorted(candidate) == sorted(reference)
    for sink, columns in reference.items():
        expected = canonical_rows(columns)
        actual = canonical_rows(candidate[sink])
        assert sorted(candidate[sink]) == sorted(columns), (
            f"{operator}/{sink}: column sets differ on {backend}"
        )
        assert rows_approximately_equal(actual, expected), (
            f"{operator}/{sink}: values differ between local and {backend}"
        )


@pytest.mark.parametrize("backend", OPTIONAL_BACKENDS)
def test_builtin_workloads_match_local(backend: str):
    """The shipped TPC-H and purchases flows agree across backends."""
    from repro.workloads import purchases_flow, tpch_refresh_flow

    for flow in (tpch_refresh_flow(scale=0.02), purchases_flow(rows_per_source=500)):
        reference = _outputs(flow, "local")
        candidate = _outputs(flow, backend)
        assert sorted(candidate) == sorted(reference)
        for sink, columns in reference.items():
            assert rows_approximately_equal(
                canonical_rows(candidate[sink]), canonical_rows(columns)
            ), f"{flow.name}/{sink}: values differ between local and {backend}"
