"""Properties of the consistent-hash ring (ISSUE 8 satellite 1).

The sharded tier's correctness rests on three ring properties --
determinism, uniformity within 2x, minimal movement on membership
change -- checked here over large seeded digest populations and
hypothesis-generated node sets.
"""

from __future__ import annotations

import hashlib
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.fleet import HashRing
from repro.fleet.ring import DEFAULT_REPLICAS

pytestmark = pytest.mark.fleet

FOUR_SHARDS = tuple(f"http://shard{i}:8731" for i in range(4))


def seeded_digests(count: int, seed: int = 7) -> list[str]:
    """``count`` realistic cache-key digests from a seeded generator."""
    rng = random.Random(seed)
    return [
        hashlib.sha256(rng.getrandbits(64).to_bytes(8, "big")).hexdigest()
        for _ in range(count)
    ]


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------


def test_assignment_is_pure_function_of_node_set():
    digests = seeded_digests(1_000)
    ring = HashRing(FOUR_SHARDS)
    again = HashRing(FOUR_SHARDS)
    shuffled = HashRing(tuple(reversed(FOUR_SHARDS)))
    for digest in digests:
        owner = ring.node(digest)
        assert again.node(digest) == owner
        assert shuffled.node(digest) == owner


def test_rings_compare_by_node_set_and_replicas():
    assert HashRing(FOUR_SHARDS) == HashRing(tuple(reversed(FOUR_SHARDS)))
    assert HashRing(FOUR_SHARDS) != HashRing(FOUR_SHARDS[:3])
    assert HashRing(FOUR_SHARDS, replicas=8) != HashRing(FOUR_SHARDS, replicas=16)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    nodes=st.lists(
        st.integers(min_value=0, max_value=99).map(lambda i: f"http://node{i}:1"),
        min_size=1,
        max_size=8,
        unique=True,
    ),
)
def test_assignment_deterministic_for_any_node_set(seed, nodes):
    digests = seeded_digests(50, seed=seed)
    forward = HashRing(nodes)
    backward = HashRing(list(reversed(nodes)))
    for digest in digests:
        owner = forward.node(digest)
        assert owner in nodes
        assert backward.node(digest) == owner


def test_ring_constructor_validation():
    with pytest.raises(ValueError, match="at least one node"):
        HashRing([])
    with pytest.raises(ValueError, match="duplicate"):
        HashRing(["http://a:1", "http://a:1"])
    with pytest.raises(ValueError, match="replicas"):
        HashRing(["http://a:1"], replicas=0)


# ---------------------------------------------------------------------------
# Uniformity
# ---------------------------------------------------------------------------


def test_four_shards_uniform_within_2x_over_10k_digests():
    digests = seeded_digests(10_000)
    counts = HashRing(FOUR_SHARDS).counts(digests)
    ideal = len(digests) / len(FOUR_SHARDS)
    assert sum(counts.values()) == len(digests)
    for shard, count in counts.items():
        assert ideal / 2 <= count <= ideal * 2, (
            f"{shard} carries {count} of {len(digests)} digests "
            f"(ideal {ideal:.0f}, allowed within 2x)"
        )


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_uniformity_holds_across_digest_populations(seed):
    digests = seeded_digests(4_000, seed=seed)
    counts = HashRing(FOUR_SHARDS).counts(digests)
    ideal = len(digests) / len(FOUR_SHARDS)
    for count in counts.values():
        assert ideal / 2 <= count <= ideal * 2


def test_more_replicas_smooth_the_partition():
    digests = seeded_digests(10_000)

    def spread(replicas: int) -> float:
        counts = HashRing(FOUR_SHARDS, replicas=replicas).counts(digests)
        return max(counts.values()) - min(counts.values())

    assert spread(DEFAULT_REPLICAS) < spread(1)


# ---------------------------------------------------------------------------
# Minimal movement on membership change
# ---------------------------------------------------------------------------


def test_adding_a_shard_moves_only_keys_the_new_shard_claims():
    digests = seeded_digests(10_000)
    before = HashRing(FOUR_SHARDS).assignments(digests)
    grown = HashRing(FOUR_SHARDS + ("http://shard4:8731",))
    moved = 0
    for digest, old_owner in before.items():
        new_owner = grown.node(digest)
        if new_owner != old_owner:
            # The only legal move is *to* the added shard.
            assert new_owner == "http://shard4:8731"
            moved += 1
    # The new shard should claim roughly 1/5 of the space -- and far
    # less than the ~4/5 a modulo rehash would move.
    expected = len(digests) / 5
    assert expected * 0.5 <= moved <= expected * 2


def test_removing_a_shard_moves_only_its_own_keys():
    digests = seeded_digests(10_000)
    full = HashRing(FOUR_SHARDS)
    before = full.assignments(digests)
    removed = FOUR_SHARDS[2]
    shrunk = HashRing(tuple(u for u in FOUR_SHARDS if u != removed))
    moved = 0
    for digest, old_owner in before.items():
        new_owner = shrunk.node(digest)
        if old_owner == removed:
            # Orphaned keys must land on a surviving shard.
            assert new_owner != removed
            moved += 1
        else:
            # Keys of surviving shards never move at all.
            assert new_owner == old_owner
    assert moved == sum(1 for owner in before.values() if owner == removed)
    expected = len(digests) / 4
    assert expected * 0.5 <= moved <= expected * 2


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    index=st.integers(min_value=0, max_value=3),
)
def test_removal_never_reassigns_surviving_shards_keys(seed, index):
    digests = seeded_digests(500, seed=seed)
    full = HashRing(FOUR_SHARDS)
    removed = FOUR_SHARDS[index]
    shrunk = HashRing(tuple(u for u in FOUR_SHARDS if u != removed))
    for digest in digests:
        old_owner = full.node(digest)
        if old_owner != removed:
            assert shrunk.node(digest) == old_owner
