"""Failure-mode and failure-storm tests of the whole fleet (ISSUE 8).

The scale-out promise is not speed, it is *indifference*: killing a
shard of four mid-plan, or killing a leased worker outright, must change
nothing about the produced plans -- byte-identical result documents, no
lost jobs, and re-simulation bounded to what the dead worker actually
held.  These tests drive exactly those storms against the in-process
harness of ``conftest.py``.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.core.planner import Planner
from repro.core.session import RedesignSession
from repro.service.redesign_server import configuration_from_request
from repro.service.results import result_to_dict
from repro.quality.composite import QualityProfile
from tests.fleet.conftest import FleetHarness

pytestmark = pytest.mark.fleet

#: The deterministic fleet-side planning configuration of every storm
#: job; small enough that one plan takes well under ten seconds, large
#: enough that status polling reliably observes it mid-flight.
STORM_CONFIG = {
    "pattern_budget": 1,
    "max_points_per_pattern": 2,
    "simulation_runs": 1,
    "max_alternatives": 200,
    "seed": 7,
}


def canonical(result_doc: dict) -> str:
    """A result document as canonical bytes, for byte-identity checks."""
    return json.dumps(result_doc, sort_keys=True)


def solo_baseline(flow) -> str:
    """The canonical result of planning ``flow`` in-process, no fleet.

    Decodes the configuration through the same request path the workers
    use, so fleet and baseline agree on every knob.
    """
    configuration = configuration_from_request(dict(STORM_CONFIG))
    planner = Planner(configuration=configuration)
    iteration = RedesignSession(flow, planner=planner).iterate()
    return canonical(result_to_dict(iteration.result))


def wait_for(predicate, timeout: float = 30.0, poll: float = 0.01):
    deadline = time.time() + timeout
    while time.time() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(poll)
    raise AssertionError("condition not reached in time")


# ---------------------------------------------------------------------------
# Satellite 2a: kill one shard of four mid-plan
# ---------------------------------------------------------------------------


def test_kill_one_shard_of_four_mid_plan(make_fleet, branching_flow):
    baseline = solo_baseline(branching_flow)
    fleet = make_fleet(n_shards=4, n_workers=1)
    client = fleet.client()
    [cache] = fleet.caches
    victim = 2
    victim_url = fleet.shard_urls[victim]

    # Warm run: all four shards serving, result must match solo.
    warm_id = client.submit(branching_flow, configuration=dict(STORM_CONFIG))
    client.wait(warm_id, timeout=60)
    assert canonical(client.result_raw(warm_id)) == baseline

    # Storm run: pull the shard out from under the plan.
    job_id = client.submit(branching_flow, configuration=dict(STORM_CONFIG))
    wait_for(lambda: client.status(job_id).get("evaluated", 0) >= 1)
    fleet.kill_shard(victim)
    status = client.wait(job_id, timeout=60)

    # The plan neither failed nor changed by a byte.
    assert status["status"] == "done"
    assert canonical(client.result_raw(job_id)) == baseline

    # Only the victim's client degraded; the other shards stayed warm.
    assert cache.degraded_shards in ((), (victim_url,))
    for index, shard in enumerate(fleet.shards):
        if index != victim:
            assert shard is not None
            assert len(shard.backend) > 0, f"shard {index} lost its store"
            assert not cache.client_for(fleet.shard_urls[index]).degraded

    # Revive on the same port: the probe re-attaches the client...
    fleet.revive_shard(victim)
    cache.get(("poke", "the", "degraded", "client"))  # ensure degradation seen
    wait_for(lambda: not cache.client_for(victim_url).degraded, timeout=10)
    assert cache.degraded_shards == ()

    # ... and the revived shard serves its slice again: a key the ring
    # assigns to it round-trips through the fleet to the new store.
    sentinel = next(
        ("sentinel", n) for n in range(10_000)
        if cache.shard_for(("sentinel", n)) == victim_url
    )
    cache.put(sentinel, QualityProfile(flow_name="republished"))
    cache.flush()
    assert sentinel in fleet.shards[victim].backend
    got = cache.get(sentinel)
    assert got is not None and got.flow_name == "republished"


# ---------------------------------------------------------------------------
# Satellite 2b: kill a leased worker
# ---------------------------------------------------------------------------


def test_killed_worker_job_is_re_leased_exactly_once(make_fleet, linear_flow):
    baseline = solo_baseline(linear_flow)
    fleet = make_fleet(n_shards=2, n_workers=1, lease_timeout=1.0)
    client = fleet.client()

    job_id = client.submit(linear_flow, configuration=dict(STORM_CONFIG))
    # Kill as soon as the lease is taken -- long before the plan can
    # finish -- so the abandon is guaranteed to strand a held lease.
    wait_for(lambda: client.status(job_id)["status"] == "running")
    fleet.kill_worker("w0")
    assert fleet.workers["w0"].jobs_abandoned == 1
    assert fleet.workers["w0"].jobs_done == 0

    # The job is NOT lost: it sits leased-but-expiring until a worker
    # (here a fresh one; a restarted "w0" works the same) re-leases it.
    replacement = fleet.add_worker("w1")
    status = client.wait(job_id, timeout=60)
    assert status["status"] == "done"
    assert status["worker"] == "w1"
    assert status["attempts"] == 2, "one original lease + exactly one re-lease"
    assert replacement.jobs_done == 1

    # No duplicate result rows: one job row, one result, the successor's.
    [job] = fleet.queue.jobs()
    assert job["id"] == job_id and job["status"] == "done"
    assert canonical(client.result_raw(job_id)) == baseline


def test_restarted_worker_reregisters_and_drains_its_own_abandoned_job(
    make_fleet, linear_flow
):
    fleet = make_fleet(n_shards=2, n_workers=1, lease_timeout=1.0)
    client = fleet.client()
    job_id = client.submit(linear_flow, configuration=dict(STORM_CONFIG))
    wait_for(lambda: client.status(job_id)["status"] == "running")
    fleet.kill_worker("w0")

    # Restart under the SAME name -- the tools/worker.py restart story.
    fleet.add_worker("w0")
    status = client.wait(job_id, timeout=60)
    assert status["status"] == "done"
    assert status["worker"] == "w0"
    assert status["attempts"] == 2
    [registration] = [w for w in fleet.queue.workers() if w["id"] == "w0"]
    assert registration["restarts"] == 1


# ---------------------------------------------------------------------------
# The tentpole: a full failure storm mid-campaign
# ---------------------------------------------------------------------------


@pytest.mark.slow
def test_failure_storm_loses_nothing_and_changes_nothing(
    make_fleet, linear_flow, branching_flow
):
    """Kill a shard AND a worker mid-campaign; demand perfection anyway.

    Asserts the ISSUE 8 acceptance triple: zero lost jobs, byte-identical
    plans for every job, and bounded re-simulation (only the killed
    worker's single held job is ever re-leased).
    """
    flows = {"linear": linear_flow, "branching": branching_flow}
    baselines = {name: solo_baseline(flow) for name, flow in flows.items()}

    fleet = make_fleet(n_shards=4, n_workers=3, lease_timeout=1.5)
    client = fleet.client()
    campaign: dict[str, str] = {}  # job id -> flow name
    for round_ in range(3):
        for name, flow in flows.items():
            job_id = client.submit(flow, configuration=dict(STORM_CONFIG))
            campaign[job_id] = name

    # Let the campaign get going, then storm: a shard dies...
    wait_for(lambda: fleet.queue.stats()["leased"] >= 1)
    fleet.kill_shard(1)
    # ... and a worker dies (with whatever lease it holds un-acked).
    fleet.kill_worker("w1")
    time.sleep(0.2)
    # The operator reacts: the shard comes back cold, the worker restarts.
    fleet.revive_shard(1)
    fleet.add_worker("w1")

    # Zero lost jobs: every submission reaches done.
    for job_id in campaign:
        assert client.wait(job_id, timeout=120)["status"] == "done"

    # Byte-identical plans: each result matches its solo baseline.
    for job_id, name in campaign.items():
        assert canonical(client.result_raw(job_id)) == baselines[name], (
            f"job {job_id} ({name}) diverged from the solo plan"
        )

    # Bounded re-simulation: at most the one job the killed worker held
    # was re-leased; everything else ran exactly once.
    jobs = fleet.queue.jobs()
    assert len(jobs) == len(campaign)
    total_attempts = sum(job["attempts"] for job in jobs)
    assert total_attempts <= len(campaign) + 1, (
        f"{total_attempts} attempts for {len(campaign)} jobs: "
        "more than the killed worker's single held job was re-run"
    )
    assert all(job["attempts"] >= 1 for job in jobs)

    # The fleet healed: no worker cache still considers shard 1 dead.
    for cache in fleet.caches:
        cache.get(("poke", id(cache)))
        wait_for(lambda: not cache.client_for(fleet.shard_urls[1]).degraded, timeout=10)

    # And the queue agrees nothing is pending or stalled.
    stats = fleet.queue.stats()
    assert stats["depth"] == 0
    assert stats["done"] == len(campaign)
    assert stats["failed"] == 0
