"""ShardedProfileCache behaviour against live shard servers.

Routing, batched fan-out, per-shard degradation/recovery, deterministic
rebalancing, pickling -- and the ISSUE 8 satellite-3 regression:
``wire_stats()``/``tier_stats()`` aggregate *every* shard client, so
``RedesignSession.cache_stats()["tiers"]`` shows the whole fleet.
"""

from __future__ import annotations

import pickle
import time

import pytest

from repro.cache import ProfileCache, build_profile_cache, key_digest
from repro.core.planner import Planner
from repro.core.session import RedesignSession
from repro.quality.composite import QualityProfile
from repro.service import CacheServer
from tests.conftest import fast_planner_config
from tests.fleet.conftest import PROBE_INTERVAL, make_sharded_cache

pytestmark = pytest.mark.fleet


def _profile(name: str = "p") -> QualityProfile:
    return QualityProfile(flow_name=name)


def _key(n: int) -> tuple:
    return ("flow", n, "settings")


@pytest.fixture
def shard_servers():
    servers = [CacheServer(ProfileCache()).start() for _ in range(4)]
    yield servers
    for server in servers:
        server.stop()


@pytest.fixture
def sharded(shard_servers):
    cache = make_sharded_cache([server.url for server in shard_servers])
    yield cache
    cache.close()


def wait_until(predicate, timeout: float = 5.0) -> None:
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError("condition not reached in time")


# ---------------------------------------------------------------------------
# Routing
# ---------------------------------------------------------------------------


def test_put_get_roundtrip_across_shards(sharded):
    keys = [_key(n) for n in range(40)]
    for n, key in enumerate(keys):
        sharded.put(key, _profile(f"p{n}"))
    sharded.flush()
    for n, key in enumerate(keys):
        got = sharded.get(key)
        assert got is not None and got.flow_name == f"p{n}"
    assert sharded.stats.hits == len(keys)


def test_entries_land_on_their_ring_shard(shard_servers, sharded):
    backends = {server.url.rstrip("/"): server.backend for server in shard_servers}
    keys = [_key(n) for n in range(60)]
    for key in keys:
        sharded.put(key, _profile())
    sharded.flush()
    used_shards = set()
    for key in keys:
        owner = sharded.ring.node(key_digest(key))
        used_shards.add(owner)
        # Present on the owner, absent from every other shard's store.
        for url, backend in backends.items():
            assert (key in backend) == (url == owner)
    assert len(used_shards) > 1, "60 keys should span several shards"


def test_get_many_fans_out_and_preserves_order(sharded):
    keys = [_key(n) for n in range(30)]
    for n in (3, 7, 21):
        sharded.put(keys[n], _profile(f"p{n}"))
    sharded.flush()
    results = sharded.get_many(keys)
    assert len(results) == len(keys)
    for n, result in enumerate(results):
        if n in (3, 7, 21):
            assert result is not None and result.flow_name == f"p{n}"
        else:
            assert result is None
    assert sharded.stats.hits == 3
    assert sharded.stats.misses == len(keys) - 3


def test_contains_and_len_see_all_shards(sharded):
    keys = [_key(n) for n in range(10)]
    for key in keys:
        sharded.put(key, _profile())
    sharded.flush()
    assert len(sharded) == len(keys)
    assert all(key in sharded for key in keys)
    assert _key(999) not in sharded
    sharded.clear()
    assert len(sharded) == 0


def test_build_profile_cache_constructs_sharded_tier(shard_servers):
    urls = tuple(server.url for server in shard_servers)
    cache = build_profile_cache(tier="sharded", urls=urls, ring_replicas=32)
    try:
        assert cache.urls == tuple(sorted(urls))
        assert cache.ring_replicas == 32
    finally:
        cache.close()
    with pytest.raises(ValueError, match="cache_urls"):
        build_profile_cache(tier="sharded")


# ---------------------------------------------------------------------------
# Satellite 3: fleet-wide wire/tier statistics aggregation
# ---------------------------------------------------------------------------


def test_wire_stats_aggregate_every_shard_client(sharded):
    keys = [_key(n) for n in range(40)]
    for key in keys:
        sharded.put(key, _profile())
    sharded.flush()
    sharded.get_many(keys)
    aggregated = sharded.wire_stats()
    per_shard = [sharded.client_for(url).wire_stats() for url in sharded.urls]
    for counter in ("requests", "connections_opened"):
        assert aggregated[counter] == sum(stats[counter] for stats in per_shard)
    # Several shards served traffic, so the sum must exceed any single
    # client's view -- the per-client number the bug used to report.
    assert sum(1 for stats in per_shard if stats["requests"]) > 1
    assert aggregated["requests"] > max(stats["requests"] for stats in per_shard)


def test_tier_stats_list_every_shard(sharded):
    sharded.put(_key(1), _profile())
    sharded.flush()
    sharded.get(_key(1))
    tiers = sharded.tier_stats()
    assert "sharded" in tiers and "wire" in tiers
    for index in range(len(sharded.urls)):
        assert f"shard{index}:http" in tiers
        assert f"shard{index}:server" in tiers  # reachable -> server view present
    assert tiers["wire"]["requests"] == sharded.wire_stats()["requests"]
    assert tiers["sharded"]["hits"] == 1


def test_session_cache_stats_show_all_shards(shard_servers, linear_flow):
    cache = make_sharded_cache([server.url for server in shard_servers])
    planner = Planner(configuration=fast_planner_config(), profile_cache=cache)
    session = RedesignSession(linear_flow, planner=planner)
    try:
        session.iterate()
        tiers = session.cache_stats()["tiers"]
        for index in range(len(shard_servers)):
            assert f"shard{index}:http" in tiers
        assert "wire" in tiers
        assert tiers["wire"]["requests"] > 0
    finally:
        cache.close()


# ---------------------------------------------------------------------------
# Per-shard degradation and recovery
# ---------------------------------------------------------------------------


def test_dead_shard_degrades_alone_and_recovers(shard_servers, sharded):
    keys = [_key(n) for n in range(40)]
    for key in keys:
        sharded.put(key, _profile())
    sharded.flush()

    victim_index = 1
    victim_url = shard_servers[victim_index].url.rstrip("/")
    victim_port = shard_servers[victim_index].port
    victim_keys = [k for k in keys if sharded.shard_for(k) == victim_url]
    live_keys = [k for k in keys if sharded.shard_for(k) != victim_url]
    assert victim_keys and live_keys

    shard_servers[victim_index].stop()
    # First touch degrades only the victim's client.
    assert sharded.get(victim_keys[0]) is None
    assert sharded.degraded_shards == (victim_url,)
    assert not sharded.client_for(sharded.shard_for(live_keys[0])).degraded

    # Live shards keep serving their slice -- stores warm, no fallback.
    for key in live_keys:
        assert sharded.get(key) is not None

    # Writes to the dead shard land in its local fallback, readable back.
    sharded.put(victim_keys[0], _profile("offline"))
    sharded.flush()
    assert sharded.get(victim_keys[0]).flow_name == "offline"

    # Revive on the same port: the probe re-attaches and republishes.
    revived = CacheServer(ProfileCache(), port=victim_port)
    revived.start()
    try:
        wait_until(lambda: not sharded.client_for(victim_url).degraded)
        wait_until(lambda: _key_on(revived, victim_keys[0]))
        assert sharded.degraded_shards == ()
        assert sharded.get(victim_keys[0]).flow_name == "offline"
        assert sharded.wire_stats()["recoveries"] == 1
    finally:
        revived.stop()


def _key_on(server: CacheServer, key: tuple) -> bool:
    return key in server.backend


def test_get_many_survives_a_dead_shard(shard_servers, sharded):
    keys = [_key(n) for n in range(30)]
    for key in keys:
        sharded.put(key, _profile())
    sharded.flush()
    victim_url = shard_servers[2].url.rstrip("/")
    shard_servers[2].stop()
    results = sharded.get_many(keys)
    for key, result in zip(keys, results):
        if sharded.shard_for(key) == victim_url:
            assert result is None  # cold fallback, not an exception
        else:
            assert result is not None
    assert sharded.degraded_shards == (victim_url,)


# ---------------------------------------------------------------------------
# Rebalancing
# ---------------------------------------------------------------------------


def test_reconfigure_moves_only_the_removed_shards_slice(shard_servers, sharded):
    keys = [_key(n) for n in range(80)]
    removed_url = shard_servers[3].url.rstrip("/")
    before = {key: sharded.shard_for(key) for key in keys}
    for key in keys:
        sharded.put(key, _profile())
    sharded.flush()

    survivors = [u for u in sharded.urls if u != removed_url]
    surviving_clients = {u: sharded.client_for(u) for u in survivors}
    sharded.reconfigure(survivors)

    assert sharded.urls == tuple(sorted(survivors))
    for key in keys:
        owner = sharded.shard_for(key)
        if before[key] != removed_url:
            assert owner == before[key], "surviving shards' keys must not move"
        else:
            assert owner != removed_url
        # Surviving keys are still served warm from their original shard.
        if before[key] != removed_url:
            assert sharded.get(key) is not None
    for url, client in surviving_clients.items():
        assert sharded.client_for(url) is client, "surviving clients are reused"


def test_reconfigure_is_deterministic_across_clients(shard_servers):
    urls = [server.url for server in shard_servers]
    one = make_sharded_cache(urls)
    two = make_sharded_cache(list(reversed(urls)))
    try:
        one.reconfigure(urls[:3])
        two.reconfigure(list(reversed(urls[:3])))
        keys = [_key(n) for n in range(50)]
        assert [one.shard_for(k) for k in keys] == [two.shard_for(k) for k in keys]
    finally:
        one.close()
        two.close()


# ---------------------------------------------------------------------------
# Pickling (process-pool workers receive a handle)
# ---------------------------------------------------------------------------


def test_pickled_clone_reads_the_same_fleet(sharded):
    sharded.put(_key(5), _profile("shared"))
    sharded.flush()
    clone = pickle.loads(pickle.dumps(sharded))
    try:
        assert clone.urls == sharded.urls
        assert clone.ring_replicas == sharded.ring_replicas
        got = clone.get(_key(5))
        assert got is not None and got.flow_name == "shared"
    finally:
        clone.close()


def test_constructor_validation():
    with pytest.raises(ValueError, match="at least one"):
        make_sharded_cache([])
