"""The in-process fleet harness behind ``tests/fleet/``.

:class:`FleetHarness` spins a complete scale-out topology inside the
test process -- N shard :class:`~repro.service.CacheServer`\\ s, the
durable :class:`~repro.fleet.JobQueue` in a tmp directory, M
:class:`~repro.fleet.FleetWorker` threads each wired to its own
:class:`~repro.fleet.ShardedProfileCache`, and the queue-backed
:class:`~repro.service.RedesignServer` front-end -- and exposes the
failure levers the storm tests drive:

* :meth:`kill_shard` / :meth:`revive_shard` -- stop a shard server and
  later bring a fresh (cold) one back *on the same port*, so the
  per-shard recovery probes of the surviving clients find it.
* :meth:`kill_worker` -- make a worker abandon its current job without
  acking (the deterministic ``kill -9``) and stop; :meth:`add_worker`
  brings capacity back, re-using a name to exercise re-registration.

Timeouts are tuned for tests: leases expire in a couple of seconds and
degraded shard clients probe on a 50 ms backoff base, so a full
kill/recover round trips in well under a second of wall clock.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

import pytest

from repro.cache import ProfileCache
from repro.fleet import FleetWorker, JobQueue, ShardedProfileCache
from repro.service import CacheServer, RedesignServer
from repro.service.client import RedesignClient

#: Fast-failure knobs shared by every harness cache client.
PROBE_INTERVAL = 0.05
CLIENT_TIMEOUT = 2.0
LEASE_TIMEOUT = 3.0


def make_sharded_cache(urls, **overrides) -> ShardedProfileCache:
    """A shard-set client with the harness's fast probe/timeout knobs."""
    kwargs = dict(timeout=CLIENT_TIMEOUT, recovery_interval=PROBE_INTERVAL)
    kwargs.update(overrides)
    return ShardedProfileCache(urls, **kwargs)


@dataclass
class FleetHarness:
    """N shards + queue + M workers + front-end, with failure levers."""

    tmp_path: object
    n_shards: int = 2
    n_workers: int = 2
    lease_timeout: float = LEASE_TIMEOUT

    shards: list[CacheServer | None] = field(default_factory=list)
    shard_ports: list[int] = field(default_factory=list)
    workers: dict[str, FleetWorker] = field(default_factory=dict)
    caches: list[ShardedProfileCache] = field(default_factory=list)
    queue: JobQueue | None = None
    front: RedesignServer | None = None
    _clients: list[RedesignClient] = field(default_factory=list)

    # ------------------------------------------------------------------

    def start(self) -> "FleetHarness":
        for _ in range(self.n_shards):
            shard = CacheServer(ProfileCache())
            shard.start()
            self.shards.append(shard)
            self.shard_ports.append(shard.port)
        self.queue = JobQueue(
            self.tmp_path / "jobs.sqlite", lease_timeout=self.lease_timeout
        )
        self.front = RedesignServer(queue=self.queue)
        self.front.start()
        for index in range(self.n_workers):
            self.add_worker(f"w{index}")
        return self

    def stop(self) -> None:
        for client in self._clients:
            client.close()
        for worker in self.workers.values():
            worker.stop()
        if self.front is not None:
            self.front.stop()
        for cache in self.caches:
            cache.close()
        for shard in self.shards:
            if shard is not None:
                shard.stop()
        if self.queue is not None:
            self.queue.close()

    # ------------------------------------------------------------------

    @property
    def shard_urls(self) -> tuple[str, ...]:
        """The configured shard addresses (stable across kill/revive)."""
        return tuple(f"http://127.0.0.1:{port}" for port in self.shard_ports)

    def client(self) -> RedesignClient:
        client = RedesignClient(self.front.url)
        self._clients.append(client)
        return client

    def add_worker(self, worker_id: str) -> FleetWorker:
        """Start a worker (re-using a stopped worker's name restarts it)."""
        previous = self.workers.get(worker_id)
        if previous is not None and previous.running:
            raise AssertionError(f"worker {worker_id} is already running")
        cache = make_sharded_cache(self.shard_urls)
        self.caches.append(cache)
        worker = FleetWorker(
            self.queue,
            worker_id=worker_id,
            cache=cache,
            poll_interval=0.02,
            lease_timeout=self.lease_timeout,
        )
        worker.start()
        self.workers[worker_id] = worker
        return worker

    def kill_worker(self, worker_id: str) -> FleetWorker:
        """Crash a worker: abandon its leased job un-acked, then stop."""
        worker = self.workers[worker_id]
        worker.kill()
        return worker

    # ------------------------------------------------------------------

    def kill_shard(self, index: int) -> None:
        """Stop one shard server; its port stays reserved for revival."""
        shard = self.shards[index]
        assert shard is not None, f"shard {index} is already down"
        shard.stop()
        self.shards[index] = None

    def revive_shard(self, index: int) -> CacheServer:
        """Bring a *cold* shard back on the original port.

        The store is fresh -- exactly what a restarted server looks
        like -- so whatever the degraded clients republish (plus new
        traffic) rewarms it.
        """
        assert self.shards[index] is None, f"shard {index} is still up"
        shard = CacheServer(ProfileCache(), port=self.shard_ports[index])
        shard.start()
        self.shards[index] = shard
        return shard


@pytest.fixture
def make_fleet(tmp_path):
    """Factory fixture: ``make_fleet(n_shards=4, n_workers=2)`` -> harness."""
    harnesses: list[FleetHarness] = []
    # The storm deliberately degrades shard clients; silence the
    # (expected) once-per-degradation warnings to keep test output sane.
    logger = logging.getLogger("repro.cache.http")
    level = logger.level
    logger.setLevel(logging.ERROR)

    def make(**kwargs) -> FleetHarness:
        harness = FleetHarness(tmp_path=tmp_path, **kwargs).start()
        harnesses.append(harness)
        return harness

    try:
        yield make
    finally:
        for harness in harnesses:
            harness.stop()
        logger.setLevel(level)


@pytest.fixture
def fleet(make_fleet) -> FleetHarness:
    """The default two-shard, two-worker fleet."""
    return make_fleet()
