"""The queue-backed RedesignServer front-end: API parity with in-process.

A ``RedesignClient`` must not be able to tell a fleet front-end from the
classic in-process server: same validation at submit time, same
status/result/delete semantics, same error codes.
"""

from __future__ import annotations

import pytest

from repro.service.client import RedesignServiceError
from repro.service.common import ServiceError
from repro.service.redesign_server import _RESERVED_FIELDS, configuration_from_request

pytestmark = pytest.mark.fleet


def test_submit_validates_before_enqueueing(fleet):
    client = fleet.client()
    with pytest.raises(RedesignServiceError) as excinfo:
        client._request("/plans", method="POST", payload={"flow": {"bogus": True}})
    assert excinfo.value.status == 400
    # Nothing reached the queue -- a malformed flow fails the submitter,
    # not a worker minutes later.
    assert len(fleet.queue) == 0


def test_reserved_fleet_fields_rejected_at_submit(fleet, linear_flow):
    client = fleet.client()
    for field in ("cache_urls", "fleet_ring_replicas", "cache_url"):
        with pytest.raises(RedesignServiceError) as excinfo:
            client.submit(linear_flow, configuration={field: "x"})
        assert excinfo.value.status == 400
        assert "owned by the service" in str(excinfo.value)
    assert len(fleet.queue) == 0


def test_fleet_knobs_are_reserved_fields():
    # The regression guard for the service-owned knob list itself.
    assert "cache_urls" in _RESERVED_FIELDS
    assert "fleet_ring_replicas" in _RESERVED_FIELDS
    with pytest.raises(ServiceError):
        configuration_from_request({"cache_urls": ("http://a:1",)})


def test_status_and_result_lifecycle(fleet, linear_flow):
    client = fleet.client()
    job_id = client.submit(
        linear_flow,
        configuration={"pattern_budget": 1, "simulation_runs": 1,
                       "max_points_per_pattern": 2},
    )
    # Unknown ids are 404, pending results are 409 -- as in-process.
    with pytest.raises(RedesignServiceError) as excinfo:
        client.status("plan-999")
    assert excinfo.value.status == 404
    try:
        client.result_raw(job_id)
    except RedesignServiceError as exc:
        assert exc.status == 409
    status = client.wait(job_id, timeout=60)
    assert status["status"] == "done"
    assert status["attempts"] == 1
    result = client.result(job_id)
    assert len(result.alternatives) > 0

    plans = client._request("/plans")["plans"]
    assert [plan["id"] for plan in plans] == [job_id]
    assert plans[0]["status"] == "done"

    assert client.delete(job_id) == {"id": job_id, "deleted": True}
    with pytest.raises(RedesignServiceError) as excinfo:
        client.status(job_id)
    assert excinfo.value.status == 404


def test_delete_refuses_live_jobs(fleet, linear_flow):
    client = fleet.client()
    # Park the queue full with no worker progress by pausing all workers.
    for worker_id in list(fleet.workers):
        fleet.workers[worker_id].stop()
    job_id = client.submit(
        linear_flow, configuration={"pattern_budget": 1, "simulation_runs": 1}
    )
    with pytest.raises(RedesignServiceError) as excinfo:
        client.delete(job_id)
    assert excinfo.value.status == 409
    assert fleet.queue.status(job_id)["status"] == "queued"


def test_health_reports_fleet_shape(fleet):
    health = fleet.client().health()
    assert health["mode"] == "fleet"
    assert health["queue"]["depth"] == 0
    assert {worker["id"] for worker in health["fleet_workers"]} == set(fleet.workers)


def test_running_status_maps_leased_state(fleet, linear_flow):
    client = fleet.client()
    job_id = client.submit(
        linear_flow, configuration={"pattern_budget": 1, "simulation_runs": 1}
    )
    saw_running = False
    for _ in range(2_000):
        status = client.status(job_id)
        assert status["status"] in ("queued", "running", "done")
        if status["status"] == "running":
            saw_running = True
            assert status["worker"] in fleet.workers
        if status["status"] == "done":
            break
    assert saw_running or client.status(job_id)["status"] == "done"
