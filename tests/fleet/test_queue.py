"""The durable job queue's lease protocol, unit-tested without planners.

The crash-safety story of the fleet is entirely in these transitions:
leases expire, expired jobs are re-leased exactly once per claimant,
zombie heartbeats/acks are rejected, and everything survives reopening
the SQLite file (the restart path).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.fleet import JobQueue

pytestmark = pytest.mark.fleet


@pytest.fixture
def queue(tmp_path):
    with JobQueue(tmp_path / "jobs.sqlite", lease_timeout=0.2) as queue:
        yield queue


def test_enqueue_lease_ack_roundtrip(queue):
    job_id = queue.enqueue({"flow": {"name": "f"}})
    assert queue.status(job_id) == {
        "id": job_id,
        "status": "queued",
        "attempts": 0,
        "evaluated": 0,
    }
    lease = queue.lease("w1")
    assert lease.job_id == job_id
    assert lease.payload == {"flow": {"name": "f"}}
    assert lease.attempts == 1
    assert queue.status(job_id)["status"] == "leased"
    assert queue.ack(job_id, "w1", "done", result={"alternatives": []}, evaluated=9)
    status = queue.status(job_id)
    assert status["status"] == "done"
    assert status["evaluated"] == 9
    assert queue.result(job_id) == {"alternatives": []}


def test_jobs_are_leased_oldest_first(queue):
    first = queue.enqueue({"n": 1})
    second = queue.enqueue({"n": 2})
    assert queue.lease("w1").job_id == first
    assert queue.lease("w1").job_id == second
    assert queue.lease("w1") is None


def test_two_workers_never_lease_the_same_job(queue):
    for n in range(8):
        queue.enqueue({"n": n})
    claimed: list[str] = []
    lock = threading.Lock()

    def drain(worker_id: str) -> None:
        own = JobQueue(queue.path)  # separate connection, like a process
        try:
            while True:
                lease = own.lease(worker_id)
                if lease is None:
                    return
                with lock:
                    claimed.append(lease.job_id)
        finally:
            own.close()

    threads = [threading.Thread(target=drain, args=(f"w{i}",)) for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(claimed) == 8
    assert len(set(claimed)) == 8


def test_expired_lease_is_reclaimed_with_attempt_bump(queue):
    job_id = queue.enqueue({})
    assert queue.lease("dead", lease_timeout=0.05).attempts == 1
    assert queue.lease("w2") is None  # still validly held
    time.sleep(0.08)
    assert queue.status(job_id)["stalled"] is True
    release = queue.lease("w2")
    assert release.job_id == job_id
    assert release.attempts == 2
    assert queue.status(job_id)["worker"] == "w2"


def test_heartbeat_extends_the_lease(queue):
    job_id = queue.enqueue({})
    queue.lease("w1", lease_timeout=0.15)
    for _ in range(4):
        time.sleep(0.08)
        assert queue.heartbeat(job_id, "w1", lease_timeout=0.15)
        # A heartbeating worker's job is never up for grabs.
        assert queue.lease("thief") is None
    assert queue.ack(job_id, "w1", "done", result={})


def test_zombie_worker_cannot_ack_or_heartbeat(queue):
    job_id = queue.enqueue({})
    queue.lease("zombie", lease_timeout=0.03)
    time.sleep(0.05)
    queue.lease("successor")
    # The original worker wakes up late: everything it tries is refused.
    assert not queue.heartbeat(job_id, "zombie")
    assert not queue.ack(job_id, "zombie", "done", result={"from": "zombie"})
    assert queue.ack(job_id, "successor", "done", result={"from": "successor"})
    # Exactly one result row, the successor's.
    assert queue.result(job_id) == {"from": "successor"}
    assert queue.status(job_id)["worker"] == "successor"


def test_expired_but_unclaimed_lease_still_acks(queue):
    # Slow is not dead: if nobody re-leased the job, the original
    # worker's late result is still the first and only one -- accepted.
    job_id = queue.enqueue({})
    queue.lease("slow", lease_timeout=0.03)
    time.sleep(0.05)
    assert queue.ack(job_id, "slow", "done", result={"late": True})
    assert queue.result(job_id) == {"late": True}


def test_failed_ack_records_error(queue):
    job_id = queue.enqueue({})
    queue.lease("w1")
    assert queue.ack(job_id, "w1", "failed", error="ValueError: boom")
    status = queue.status(job_id)
    assert status["status"] == "failed"
    assert status["error"] == "ValueError: boom"
    assert queue.result(job_id) is None


def test_ack_rejects_non_terminal_status(queue):
    job_id = queue.enqueue({})
    queue.lease("w1")
    with pytest.raises(ValueError, match="terminal"):
        queue.ack(job_id, "w1", "leased")


def test_delete_only_terminal_jobs(queue):
    job_id = queue.enqueue({})
    assert not queue.delete(job_id)  # queued
    queue.lease("w1")
    assert not queue.delete(job_id)  # leased
    queue.ack(job_id, "w1", "done", result={})
    assert queue.delete(job_id)
    assert queue.status(job_id) is None
    assert not queue.delete(job_id)


def test_job_ids_never_reused_after_delete(queue):
    first = queue.enqueue({})
    queue.lease("w1")
    queue.ack(first, "w1", "done", result={})
    queue.delete(first)
    assert queue.enqueue({}) != first


def test_queue_state_survives_reopening(tmp_path):
    path = tmp_path / "restart.sqlite"
    with JobQueue(path) as queue:
        job_id = queue.enqueue({"persisted": True})
        queue.register_worker("w1", pid=111)
    # A restarted front-end/worker opens the same file and sees it all.
    with JobQueue(path) as reopened:
        assert reopened.status(job_id)["status"] == "queued"
        lease = reopened.lease("w1")
        assert lease.payload == {"persisted": True}
        [worker] = reopened.workers()
        assert worker["id"] == "w1"


def test_worker_registry_counts_restarts(queue):
    queue.register_worker("w1", pid=100)
    queue.register_worker("w2", pid=200)
    queue.register_worker("w1", pid=101)  # the restart
    workers = {entry["id"]: entry for entry in queue.workers()}
    assert workers["w1"]["restarts"] == 1
    assert workers["w1"]["pid"] == 101
    assert workers["w2"]["restarts"] == 0


def test_stats_counts_by_state(queue):
    done = queue.enqueue({})
    queue.enqueue({})
    expired = queue.enqueue({})
    queue.lease("w1")  # -> done below
    queue.ack(done, "w1", "done", result={})
    queue.lease("w1", lease_timeout=0.01)
    time.sleep(0.03)
    stats = queue.stats()
    assert stats == {
        "queued": 1,
        "leased": 1,
        "done": 1,
        "failed": 0,
        "expired": 1,
        "depth": 2,
    }
    assert len(queue) == 3
    assert {job["id"] for job in queue.jobs()} == {done, expired, queue.jobs()[1]["id"]}


def test_lease_timeout_validation(tmp_path):
    with pytest.raises(ValueError, match="lease_timeout"):
        JobQueue(tmp_path / "bad.sqlite", lease_timeout=0)
