"""Tests for the benchmark workloads (purchases, TPC-H, TPC-DS, generator)."""

import pytest

from repro.etl.operations import OperationKind
from repro.etl.validation import is_valid, validate_flow
from repro.simulator.engine import simulate_flow
from repro.workloads import (
    RandomFlowConfig,
    purchases_flow,
    random_flow,
    tpcds_sales_flow,
    tpcds_schemas,
    tpch_refresh_flow,
    tpch_schemas,
)


class TestPurchasesFlow:
    def test_structure_matches_fig2(self):
        flow = purchases_flow()
        assert is_valid(flow)
        # two purchase sources, a filter, an attribute split, the derive
        # task and a fact load
        sources = flow.sources()
        assert len(sources) == 2
        assert {op.name for op in sources} == {"S_Purchases_3", "S_Purchases_4"}
        assert flow.operations_of_kind(OperationKind.FILTER)
        assert flow.operations_of_kind(OperationKind.DERIVE)
        assert len(flow.sinks()) == 1

    def test_derive_dominates_cost(self):
        flow = purchases_flow()
        derive = flow.operations_of_kind(OperationKind.DERIVE)[0]
        others = [
            op.properties.cost_per_tuple
            for op in flow.operations()
            if op.kind is not OperationKind.DERIVE
        ]
        assert derive.properties.cost_per_tuple > max(others)
        assert derive.properties.failure_rate > 0

    def test_parameterisation(self):
        flow = purchases_flow(rows_per_source=123, derive_cost_per_tuple=0.5, failure_rate=0.3)
        sources = flow.sources()
        assert all(op.config["rows"] == 123 for op in sources)
        derive = flow.operations_of_kind(OperationKind.DERIVE)[0]
        assert derive.properties.cost_per_tuple == pytest.approx(0.5)
        assert derive.properties.failure_rate == pytest.approx(0.3)

    def test_simulatable(self):
        archive = simulate_flow(purchases_flow(rows_per_source=1_000), runs=2, seed=1)
        assert archive.mean_cycle_time_ms() > 0
        assert archive.mean_rows_loaded() > 0


class TestTpchFlow:
    def test_size_and_validity(self, tpch_flow):
        # "tens of operators, extracting data from multiple sources"
        assert tpch_flow.node_count >= 25
        assert len(tpch_flow.sources()) >= 5
        assert len(tpch_flow.sinks()) >= 4
        assert is_valid(tpch_flow)

    def test_schema_catalogue(self):
        schemas = tpch_schemas()
        assert {"customer", "orders", "lineitem", "part", "supplier", "nation"} <= set(schemas)
        assert "l_extendedprice" in schemas["lineitem"]

    def test_contains_typical_warehouse_operations(self, tpch_flow):
        assert tpch_flow.operations_of_kind(OperationKind.JOIN)
        assert tpch_flow.operations_of_kind(OperationKind.SURROGATE_KEY)
        assert tpch_flow.operations_of_kind(OperationKind.AGGREGATE)
        assert tpch_flow.operations_of_kind(OperationKind.LOOKUP)

    def test_scale_parameter(self):
        small = tpch_refresh_flow(scale=0.01)
        large = tpch_refresh_flow(scale=1.0)
        small_rows = sum(op.config["rows"] for op in small.sources())
        large_rows = sum(op.config["rows"] for op in large.sources())
        assert small_rows < large_rows
        assert small.node_count == large.node_count

    def test_simulatable(self, tpch_flow):
        archive = simulate_flow(tpch_flow, runs=1, seed=2)
        assert archive.mean_cycle_time_ms() > 0


class TestTpcdsFlow:
    def test_size_and_validity(self):
        flow = tpcds_sales_flow(scale=0.05)
        assert flow.node_count >= 28
        assert len(flow.sources()) >= 5
        assert is_valid(flow)

    def test_schema_catalogue(self):
        schemas = tpcds_schemas()
        assert {"store_sales", "web_sales", "item", "customer", "store", "date_dim"} == set(schemas)

    def test_two_sales_channels_union(self):
        flow = tpcds_sales_flow(scale=0.05)
        unions = flow.operations_of_kind(OperationKind.UNION)
        assert any(op.name == "union_sales_channels" for op in unions)
        assert flow.operations_of_kind(OperationKind.SLOWLY_CHANGING_DIM)

    def test_simulatable(self):
        archive = simulate_flow(tpcds_sales_flow(scale=0.02), runs=1, seed=2)
        assert archive.mean_rows_loaded() > 0


class TestRandomFlowGenerator:
    def test_reproducible(self):
        a = random_flow(RandomFlowConfig(operations=20, seed=9))
        b = random_flow(RandomFlowConfig(operations=20, seed=9))
        assert a.structurally_equal(b)

    def test_different_seeds_differ(self):
        a = random_flow(RandomFlowConfig(operations=20, seed=1))
        b = random_flow(RandomFlowConfig(operations=20, seed=2))
        assert not a.structurally_equal(b)

    @pytest.mark.parametrize("operations", [10, 20, 40])
    def test_requested_size_is_respected(self, operations):
        flow = random_flow(RandomFlowConfig(operations=operations, sources=3, seed=5))
        assert is_valid(flow)
        # the generator may add a couple of structural operations
        assert operations <= flow.node_count <= operations + 4

    def test_sources_count(self):
        flow = random_flow(RandomFlowConfig(operations=20, sources=5, seed=4))
        assert len(flow.sources()) == 5

    def test_invalid_configurations_rejected(self):
        with pytest.raises(ValueError):
            RandomFlowConfig(operations=2)
        with pytest.raises(ValueError):
            RandomFlowConfig(operations=10, sources=0)
        with pytest.raises(ValueError):
            RandomFlowConfig(operations=10, sources=8)

    def test_generated_flows_are_simulatable_and_plannable(self):
        from repro.core import Planner, ProcessingConfiguration

        flow = random_flow(RandomFlowConfig(operations=15, sources=2, seed=7))
        archive = simulate_flow(flow, runs=1, seed=1)
        assert archive.mean_cycle_time_ms() > 0
        planner = Planner(
            configuration=ProcessingConfiguration(
                pattern_budget=1, max_points_per_pattern=1, simulation_runs=1
            )
        )
        assert planner.plan(flow).alternatives
