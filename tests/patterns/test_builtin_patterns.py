"""Behavioural tests for the built-in Flow Component Patterns."""

import pytest

from repro.etl.operations import OperationKind
from repro.etl.validation import is_valid
from repro.patterns.base import ApplicationPointType
from repro.patterns.data_quality import (
    CrosscheckSources,
    FilterNullValues,
    RemoveDuplicateEntries,
)
from repro.patterns.graph_level import (
    AdjustScheduleFrequency,
    EncryptDataFlow,
    RoleBasedAccessControl,
    UpgradeResourceTier,
)
from repro.patterns.performance import HorizontalPartitionTask, ParallelizeTask
from repro.patterns.reliability import AddCheckpoint


def _best_point(pattern, flow):
    points = pattern.find_application_points(flow)
    assert points, f"{pattern.name} found no application points"
    return max(points, key=lambda p: p.fitness)


class TestFilterNullValues:
    def test_application_points_require_nullable_fields(self, linear_flow):
        points = FilterNullValues().find_application_points(linear_flow)
        assert points
        for point in points:
            schema = linear_flow.edge(*point.edge).schema
            assert schema.nullable_fields

    def test_fitness_is_highest_near_sources(self, small_purchases):
        pattern = FilterNullValues()
        points = pattern.find_application_points(small_purchases)
        by_edge = {p.edge: p.fitness for p in points}
        source_edges = [
            p for p in points
            if small_purchases.operation(p.edge[0]).kind.is_source
        ]
        assert source_edges
        max_fitness = max(by_edge.values())
        assert all(p.fitness == pytest.approx(max_fitness) for p in source_edges)

    def test_apply_inserts_filter_null_operation(self, linear_flow):
        pattern = FilterNullValues()
        point = _best_point(pattern, linear_flow)
        new_flow = pattern.apply(linear_flow, point)
        assert new_flow.node_count == linear_flow.node_count + 1
        assert new_flow.operations_of_kind(OperationKind.FILTER_NULLS)
        assert is_valid(new_flow)
        assert not linear_flow.operations_of_kind(OperationKind.FILTER_NULLS)

    def test_not_applicable_next_to_existing_filter(self, linear_flow):
        pattern = FilterNullValues()
        point = _best_point(pattern, linear_flow)
        once = pattern.apply(linear_flow, point)
        # the replaced edge no longer exists; the edges adjacent to the new
        # null filter must not be valid application points again
        new_points = pattern.find_application_points(once)
        filter_ids = {op.op_id for op in once.operations_of_kind(OperationKind.FILTER_NULLS)}
        for p in new_points:
            assert not (set(p.edge) & filter_ids)


class TestRemoveDuplicateEntries:
    def test_apply_inserts_deduplicate(self, linear_flow):
        pattern = RemoveDuplicateEntries()
        point = _best_point(pattern, linear_flow)
        new_flow = pattern.apply(linear_flow, point)
        dedups = new_flow.operations_of_kind(OperationKind.DEDUPLICATE)
        assert len(dedups) == 1
        # key fields of the edge schema become the deduplication keys
        assert dedups[0].config["keys"] == ["id"]

    def test_improves_attribute(self):
        from repro.quality.framework import QualityCharacteristic

        assert QualityCharacteristic.DATA_QUALITY in RemoveDuplicateEntries().improves


class TestCrosscheckSources:
    def test_apply_inserts_crosscheck_with_reference(self, linear_flow):
        pattern = CrosscheckSources(reference_source="master_data", reference_rows=100)
        point = _best_point(pattern, linear_flow)
        new_flow = pattern.apply(linear_flow, point)
        crosschecks = new_flow.operations_of_kind(OperationKind.CROSSCHECK)
        assert len(crosschecks) == 1
        assert crosschecks[0].config["reference"] == "master_data"
        assert is_valid(new_flow)


class TestParallelizeTask:
    def test_points_are_costly_non_structural_nodes(self, small_purchases):
        pattern = ParallelizeTask(degree=4)
        points = pattern.find_application_points(small_purchases)
        assert points
        for point in points:
            op = small_purchases.operation(point.node_id)
            assert not op.kind.is_source and not op.kind.is_sink
            assert not op.kind.is_router and not op.kind.is_merger

    def test_best_point_is_the_most_expensive_task(self, small_purchases):
        pattern = ParallelizeTask(degree=4)
        point = _best_point(pattern, small_purchases)
        op = small_purchases.operation(point.node_id)
        max_cost = max(o.properties.cost_per_tuple for o in small_purchases.operations())
        assert op.properties.cost_per_tuple == pytest.approx(max_cost)
        assert point.fitness == pytest.approx(1.0)

    def test_apply_sets_parallelism_without_topology_change(self, small_purchases):
        pattern = ParallelizeTask(degree=4)
        point = _best_point(pattern, small_purchases)
        new_flow = pattern.apply(small_purchases, point)
        assert new_flow.node_count == small_purchases.node_count
        assert new_flow.operation(point.node_id).parallelism == 4
        assert small_purchases.operation(point.node_id).parallelism == 1

    def test_already_parallel_task_not_applicable_again(self, small_purchases):
        pattern = ParallelizeTask(degree=4)
        point = _best_point(pattern, small_purchases)
        new_flow = pattern.apply(small_purchases, point)
        remaining = {p.node_id for p in pattern.find_application_points(new_flow)}
        assert point.node_id not in remaining

    def test_invalid_degree_rejected(self):
        with pytest.raises(ValueError):
            ParallelizeTask(degree=1)


class TestHorizontalPartitionTask:
    def test_apply_builds_partition_copies_merge(self, small_purchases):
        pattern = HorizontalPartitionTask(partitions=2)
        point = _best_point(pattern, small_purchases)
        original = small_purchases.operation(point.node_id)
        new_flow = pattern.apply(small_purchases, point)
        # original replaced by partition + 2 copies + merge -> net +3 nodes
        assert new_flow.node_count == small_purchases.node_count + 3
        assert point.node_id not in new_flow
        assert new_flow.operations_of_kind(OperationKind.PARTITION)
        assert new_flow.operations_of_kind(OperationKind.MERGE)
        copies = [
            op for op in new_flow.operations()
            if op.kind is original.kind and "Group_" in op.name
        ]
        assert len(copies) == 2
        assert is_valid(new_flow)

    def test_copies_preserve_cost_model(self, small_purchases):
        pattern = HorizontalPartitionTask(partitions=3)
        point = _best_point(pattern, small_purchases)
        original = small_purchases.operation(point.node_id)
        new_flow = pattern.apply(small_purchases, point)
        copies = [op for op in new_flow.operations() if "Group_" in op.name]
        assert len(copies) == 3
        for copy in copies:
            assert copy.properties.cost_per_tuple == pytest.approx(
                original.properties.cost_per_tuple
            )

    def test_blocking_operations_are_excluded(self, branching_flow):
        pattern = HorizontalPartitionTask()
        points = pattern.find_application_points(branching_flow)
        for point in points:
            assert not branching_flow.operation(point.node_id).kind.is_blocking

    def test_invalid_partitions_rejected(self):
        with pytest.raises(ValueError):
            HorizontalPartitionTask(partitions=1)


class TestAddCheckpoint:
    def test_points_exclude_source_and_sink_edges(self, small_purchases):
        pattern = AddCheckpoint()
        points = pattern.find_application_points(small_purchases)
        assert points
        for point in points:
            source_op = small_purchases.operation(point.edge[0])
            target_op = small_purchases.operation(point.edge[1])
            assert not source_op.kind.is_source
            assert not target_op.kind.is_sink

    def test_fitness_grows_with_upstream_cost(self, small_purchases):
        pattern = AddCheckpoint()
        points = pattern.find_application_points(small_purchases)
        by_distance = sorted(
            points, key=lambda p: small_purchases.distance_from_sources(p.edge[0])
        )
        assert by_distance[0].fitness <= by_distance[-1].fitness

    def test_apply_inserts_checkpoint(self, small_purchases):
        pattern = AddCheckpoint()
        point = _best_point(pattern, small_purchases)
        new_flow = pattern.apply(small_purchases, point)
        assert new_flow.operations_of_kind(OperationKind.CHECKPOINT)
        assert is_valid(new_flow)

    def test_no_double_checkpoint_on_same_edge(self, small_purchases):
        pattern = AddCheckpoint()
        point = _best_point(pattern, small_purchases)
        once = pattern.apply(small_purchases, point)
        checkpoint_ids = {op.op_id for op in once.operations_of_kind(OperationKind.CHECKPOINT)}
        for p in pattern.find_application_points(once):
            assert not (set(p.edge) & checkpoint_ids)


class TestGraphLevelPatterns:
    @pytest.mark.parametrize(
        "pattern,key,value",
        [
            (EncryptDataFlow(), "encryption", True),
            (RoleBasedAccessControl(), "access_control", "role_based"),
            (UpgradeResourceTier("xlarge"), "resource_tier", "xlarge"),
            (AdjustScheduleFrequency(96.0), "schedule_frequency_per_day", 96.0),
        ],
    )
    def test_apply_sets_annotation(self, linear_flow, pattern, key, value):
        points = pattern.find_application_points(linear_flow)
        assert len(points) == 1
        assert points[0].point_type is ApplicationPointType.GRAPH
        new_flow = pattern.apply(linear_flow, points[0])
        assert new_flow.annotations[key] == value
        assert key not in linear_flow.annotations

    def test_not_applicable_twice(self, linear_flow):
        pattern = EncryptDataFlow()
        point = pattern.find_application_points(linear_flow)[0]
        once = pattern.apply(linear_flow, point)
        assert pattern.find_application_points(once) == []

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ValueError):
            AdjustScheduleFrequency(0.0)
