"""Tests for the pattern framework (application points, prerequisites) and the palette."""

import pytest

from repro.etl.graph import ETLGraph
from repro.patterns.base import (
    ApplicationPoint,
    ApplicationPointType,
    FlowComponentPattern,
    PatternApplication,
    Prerequisite,
)
from repro.patterns.custom import CustomPatternSpec
from repro.patterns.registry import PatternRegistry, default_palette, figure6_palette
from repro.quality.framework import QualityCharacteristic


class _NoopEdgePattern(FlowComponentPattern):
    """Minimal edge pattern used to exercise the framework."""

    name = "NoopEdge"
    description = "does nothing"
    improves = (QualityCharacteristic.MANAGEABILITY,)
    point_type = ApplicationPointType.EDGE

    def __init__(self, require_label=""):
        self.require_label = require_label

    def prerequisites(self):
        if not self.require_label:
            return ()
        return (
            Prerequisite(
                "label_matches",
                lambda flow, point: flow.edge(*point.edge).label == self.require_label,
            ),
        )

    def fitness(self, flow, point):
        return 0.9

    def apply(self, flow, point):
        new_flow = flow.copy()
        new_flow.record_pattern(f"{self.name} @ {point.describe()}")
        return new_flow


class TestApplicationPoint:
    def test_describe(self):
        assert ApplicationPoint(ApplicationPointType.NODE, node_id="n").describe() == "node n"
        assert (
            ApplicationPoint(ApplicationPointType.EDGE, edge=("a", "b")).describe()
            == "edge a->b"
        )
        assert ApplicationPoint(ApplicationPointType.GRAPH).describe() == "entire flow"

    def test_key_ignores_fitness(self):
        a = ApplicationPoint(ApplicationPointType.NODE, node_id="n", fitness=0.1)
        b = ApplicationPoint(ApplicationPointType.NODE, node_id="n", fitness=0.9)
        assert a.key() == b.key()

    def test_pattern_application_describe(self):
        app = PatternApplication("P", ApplicationPoint(ApplicationPointType.NODE, node_id="x"))
        assert app.describe() == "P @ node x"


class TestFindApplicationPoints:
    def test_edge_pattern_checks_every_edge(self, linear_flow):
        pattern = _NoopEdgePattern()
        points = pattern.find_application_points(linear_flow)
        assert len(points) == linear_flow.edge_count
        assert all(p.point_type is ApplicationPointType.EDGE for p in points)
        assert all(p.fitness == pytest.approx(0.9) for p in points)

    def test_prerequisites_filter_points(self, linear_flow):
        pattern = _NoopEdgePattern(require_label="never_matches")
        assert pattern.find_application_points(linear_flow) == []

    def test_wrong_point_type_is_never_applicable(self, linear_flow):
        pattern = _NoopEdgePattern()
        node_point = ApplicationPoint(ApplicationPointType.NODE, node_id="x")
        assert not pattern.is_applicable_at(linear_flow, node_point)

    def test_apply_checked_rejects_invalid_point(self, linear_flow):
        pattern = _NoopEdgePattern(require_label="never")
        edge = linear_flow.edges()[0]
        point = ApplicationPoint(ApplicationPointType.EDGE, edge=(edge.source, edge.target))
        with pytest.raises(ValueError, match="not applicable"):
            pattern.apply_checked(linear_flow, point)

    def test_apply_checked_accepts_valid_point(self, linear_flow):
        pattern = _NoopEdgePattern()
        edge = linear_flow.edges()[0]
        point = ApplicationPoint(ApplicationPointType.EDGE, edge=(edge.source, edge.target))
        new_flow = pattern.apply_checked(linear_flow, point)
        assert new_flow.applied_patterns

    def test_describe_metadata(self):
        info = _NoopEdgePattern().describe()
        assert info["name"] == "NoopEdge"
        assert info["application_point"] == "edge"
        assert info["improves"] == ["Manageability"]


class TestPatternRegistry:
    def test_default_palette_contains_fig6_patterns(self):
        palette = default_palette()
        for name in (
            "RemoveDuplicateEntries",
            "FilterNullValues",
            "CrosscheckSources",
            "ParallelizeTask",
            "AddCheckpoint",
        ):
            assert name in palette

    def test_default_palette_includes_graph_level_patterns(self):
        palette = default_palette()
        assert "EncryptDataFlow" in palette
        assert "UpgradeResourceTier" in palette
        smaller = default_palette(include_graph_level=False)
        assert "EncryptDataFlow" not in smaller
        assert len(smaller) < len(palette)

    def test_figure6_palette_is_exactly_the_paper_table(self):
        palette = figure6_palette()
        assert sorted(palette.names()) == sorted(
            [
                "RemoveDuplicateEntries",
                "FilterNullValues",
                "CrosscheckSources",
                "ParallelizeTask",
                "AddCheckpoint",
            ]
        )

    def test_palette_table_rows(self):
        rows = figure6_palette().palette_table()
        by_name = {row["fcp"]: row["related_quality_attribute"] for row in rows}
        assert by_name["FilterNullValues"] == "Data Quality"
        assert by_name["ParallelizeTask"] == "Performance"
        assert by_name["AddCheckpoint"] == "Reliability"

    def test_subset_and_unknown(self):
        palette = default_palette()
        subset = palette.subset(["FilterNullValues", "AddCheckpoint"])
        assert len(subset) == 2
        with pytest.raises(KeyError):
            palette.subset(["DoesNotExist"])

    def test_for_characteristic(self):
        palette = default_palette()
        names = {p.name for p in palette.for_characteristic(QualityCharacteristic.DATA_QUALITY)}
        assert {"RemoveDuplicateEntries", "FilterNullValues", "CrosscheckSources"} <= names

    def test_register_custom_pattern(self):
        palette = PatternRegistry()
        spec = CustomPatternSpec(name="MyCleaner", description="custom")
        pattern = palette.register_custom(spec)
        assert "MyCleaner" in palette
        assert palette.get("MyCleaner") is pattern

    def test_register_requires_name(self):
        pattern = _NoopEdgePattern()
        pattern.name = ""
        with pytest.raises(ValueError):
            PatternRegistry().register(pattern)

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            default_palette().get("Missing")

    def test_unregister(self):
        palette = default_palette()
        palette.unregister("FilterNullValues")
        assert "FilterNullValues" not in palette
