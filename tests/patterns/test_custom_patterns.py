"""Tests for user-defined Flow Component Patterns (demo part P3)."""

import pytest

from repro.etl.operations import OperationKind
from repro.etl.validation import is_valid
from repro.patterns.custom import CustomEdgePattern, CustomPatternSpec
from repro.quality.framework import QualityCharacteristic


@pytest.fixture
def anonymize_spec() -> CustomPatternSpec:
    """A custom pattern that anonymises data close to the loads (security-motivated)."""
    return CustomPatternSpec(
        name="AnonymizeSensitiveFields",
        description="Mask personally identifiable information",
        operation_kind=OperationKind.CLEANSE,
        improves=(QualityCharacteristic.SECURITY,),
        cost_per_tuple=0.012,
        operation_config={"fields": ["name"]},
        prefer_near_sources=False,
    )


class TestCustomPatternSpec:
    def test_round_trip_serialisation(self, anonymize_spec):
        restored = CustomPatternSpec.from_dict(anonymize_spec.to_dict())
        assert restored == anonymize_spec

    def test_defaults(self):
        spec = CustomPatternSpec(name="X")
        assert spec.operation_kind is OperationKind.CLEANSE
        assert spec.improves == (QualityCharacteristic.DATA_QUALITY,)


class TestCustomEdgePattern:
    def test_pattern_metadata_comes_from_spec(self, anonymize_spec):
        pattern = CustomEdgePattern(anonymize_spec)
        assert pattern.name == "AnonymizeSensitiveFields"
        assert pattern.improves == (QualityCharacteristic.SECURITY,)

    def test_apply_inserts_configured_operation(self, linear_flow, anonymize_spec):
        pattern = CustomEdgePattern(anonymize_spec)
        points = pattern.find_application_points(linear_flow)
        assert points
        new_flow = pattern.apply(linear_flow, points[0])
        added = [
            op for op in new_flow.operations()
            if op.kind is OperationKind.CLEANSE and op.config.get("fields") == ["name"]
        ]
        assert len(added) == 1
        assert added[0].properties.cost_per_tuple == pytest.approx(0.012)
        assert is_valid(new_flow)

    def test_prefer_near_sinks_heuristic(self, linear_flow, anonymize_spec):
        pattern = CustomEdgePattern(anonymize_spec)
        points = pattern.find_application_points(linear_flow)
        # prefer_near_sources=False -> fitness increases with distance from sources
        ordered = sorted(points, key=lambda p: linear_flow.distance_from_sources(p.edge[0]))
        assert ordered[0].fitness <= ordered[-1].fitness

    def test_prefer_near_sources_heuristic(self, linear_flow):
        spec = CustomPatternSpec(name="EarlyCleanser", prefer_near_sources=True)
        pattern = CustomEdgePattern(spec)
        points = pattern.find_application_points(linear_flow)
        ordered = sorted(points, key=lambda p: linear_flow.distance_from_sources(p.edge[0]))
        assert ordered[0].fitness >= ordered[-1].fitness

    def test_numeric_field_requirement(self, linear_flow):
        spec = CustomPatternSpec(name="NeedsNumbers", requires_numeric_field=True)
        assert CustomEdgePattern(spec).find_application_points(linear_flow)

    def test_temporal_field_requirement_unsatisfied(self, linear_flow):
        # The linear flow schema has a timestamp, so build a spec requiring
        # something that is absent from the schema: strip temporal fields.
        spec = CustomPatternSpec(name="NeedsDates", requires_temporal_field=True)
        pattern = CustomEdgePattern(spec)
        assert pattern.find_application_points(linear_flow)  # timestamp present

        from repro.etl.builder import FlowBuilder
        from repro.etl.schema import DataType, Field, Schema

        builder = FlowBuilder("no_dates")
        builder.extract_table(
            "src",
            schema=Schema.of(Field("id", DataType.INTEGER, nullable=False, key=True)),
            rows=10,
        )
        builder.load_table("load")
        flow = builder.build()
        assert pattern.find_application_points(flow) == []

    def test_nullable_field_requirement(self, linear_flow):
        spec = CustomPatternSpec(name="NeedsNullable", requires_nullable_field=True)
        assert CustomEdgePattern(spec).find_application_points(linear_flow)

    def test_not_applicable_next_to_same_operation(self, linear_flow):
        spec = CustomPatternSpec(name="OnceOnly", operation_kind=OperationKind.CLEANSE)
        pattern = CustomEdgePattern(spec)
        point = pattern.find_application_points(linear_flow)[0]
        once = pattern.apply(linear_flow, point)
        cleanse_ids = {op.op_id for op in once.operations_of_kind(OperationKind.CLEANSE)}
        for p in pattern.find_application_points(once):
            assert not (set(p.edge) & cleanse_ids)

    def test_custom_pattern_usable_by_planner(self, linear_flow, anonymize_spec):
        from repro.core import Planner, ProcessingConfiguration
        from repro.patterns.registry import PatternRegistry

        palette = PatternRegistry()
        palette.register_custom(anonymize_spec)
        planner = Planner(
            palette=palette,
            configuration=ProcessingConfiguration(pattern_budget=1, simulation_runs=1),
        )
        result = planner.plan(linear_flow)
        assert result.alternatives
        assert all(
            alt.pattern_names == ("AnonymizeSensitiveFields",) for alt in result.alternatives
        )
