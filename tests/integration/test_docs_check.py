"""Tests of the ``make docs-check`` tooling (``tools/docs_check.py``).

The checker gates three docs invariants: no broken intra-repository
links in README/docs, every ``ProcessingConfiguration`` field documented
in the tuning guide, and -- inversely -- no tuning-guide knob entry for
a field that no longer exists.  These tests assert the current tree is
clean and that the checker actually catches all failure modes.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "docs_check", REPO_ROOT / "tools" / "docs_check.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_repository_docs_are_clean():
    checker = _load_checker()
    assert checker.broken_links() == []
    assert checker.undocumented_knobs() == []
    assert checker.phantom_knobs() == []
    assert checker.main() == 0


def test_broken_link_detected(tmp_path):
    checker = _load_checker()
    doc = tmp_path / "doc.md"
    doc.write_text(
        "[fine](doc.md) [gone](missing.md) [ext](https://example.com) [anchor](#x)"
    )
    problems = checker.broken_links([doc])
    assert len(problems) == 1
    assert "missing.md" in problems[0]


def test_missing_doc_file_detected(tmp_path):
    checker = _load_checker()
    problems = checker.broken_links([tmp_path / "absent.md"])
    assert problems and "file missing" in problems[0]


def test_undocumented_knob_detected(tmp_path):
    checker = _load_checker()
    partial = tmp_path / "tuning.md"
    partial.write_text("only documents `pattern_budget` and `copy_mode`")
    problems = checker.undocumented_knobs(partial)
    assert problems, "an incomplete tuning guide must be flagged"
    assert any("prefix_cache" in p for p in problems)
    assert not any("pattern_budget`" in p for p in problems)


def test_phantom_knob_detected(tmp_path):
    """The inverse check: a documented-but-nonexistent field must fail."""
    checker = _load_checker()
    stale = tmp_path / "tuning.md"
    stale.write_text(
        "### `pattern_budget` — default `2`\nreal knob\n\n"
        "### `turbo_mode` — default `False`\nremoved three PRs ago\n"
    )
    problems = checker.phantom_knobs(stale)
    assert len(problems) == 1
    assert "turbo_mode" in problems[0]


def test_phantom_knob_ignores_non_heading_mentions(tmp_path):
    """Prose mentions of arbitrary backticked names are not knob entries."""
    checker = _load_checker()
    doc = tmp_path / "tuning.md"
    doc.write_text(
        "### `copy_mode` — default `\"deep\"`\nmentions `GraphDelta` and "
        "`validate_delta` in prose, which are not knobs\n"
    )
    assert checker.phantom_knobs(doc) == []


def test_every_knob_has_a_tuning_entry():
    """The acceptance criterion: docs-check verifies every
    ProcessingConfiguration knob is documented -- including new ones."""
    import dataclasses
    import sys

    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.core.configuration import ProcessingConfiguration

    text = (REPO_ROOT / "docs" / "performance-tuning.md").read_text()
    for field in dataclasses.fields(ProcessingConfiguration):
        assert f"`{field.name}`" in text, field.name
