"""Tests of the ``make docs-check`` tooling (``tools/docs_check.py``).

The checker gates two docs invariants: no broken intra-repository links
in README/docs, and every ``ProcessingConfiguration`` field documented
in the tuning guide.  These tests assert the current tree is clean and
that the checker actually catches both failure modes.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "docs_check", REPO_ROOT / "tools" / "docs_check.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_repository_docs_are_clean():
    checker = _load_checker()
    assert checker.broken_links() == []
    assert checker.undocumented_knobs() == []
    assert checker.main() == 0


def test_broken_link_detected(tmp_path):
    checker = _load_checker()
    doc = tmp_path / "doc.md"
    doc.write_text(
        "[fine](doc.md) [gone](missing.md) [ext](https://example.com) [anchor](#x)"
    )
    problems = checker.broken_links([doc])
    assert len(problems) == 1
    assert "missing.md" in problems[0]


def test_missing_doc_file_detected(tmp_path):
    checker = _load_checker()
    problems = checker.broken_links([tmp_path / "absent.md"])
    assert problems and "file missing" in problems[0]


def test_undocumented_knob_detected(tmp_path):
    checker = _load_checker()
    partial = tmp_path / "tuning.md"
    partial.write_text("only documents `pattern_budget` and `copy_mode`")
    problems = checker.undocumented_knobs(partial)
    assert problems, "an incomplete tuning guide must be flagged"
    assert any("prefix_cache" in p for p in problems)
    assert not any("pattern_budget`" in p for p in problems)


def test_every_knob_has_a_tuning_entry():
    """The acceptance criterion: docs-check verifies every
    ProcessingConfiguration knob is documented -- including new ones."""
    import dataclasses
    import sys

    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.core.configuration import ProcessingConfiguration

    text = (REPO_ROOT / "docs" / "performance-tuning.md").read_text()
    for field in dataclasses.fields(ProcessingConfiguration):
        assert f"`{field.name}`" in text, field.name
