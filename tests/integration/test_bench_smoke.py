"""Smoke-run of the streaming-pipeline benchmark on a tiny flow.

Keeps ``benchmarks/bench_streaming_pipeline.py`` importable and its
comparison harness runnable from the test suite (one run, smallest
budgets), without asserting on wall-clock -- timing claims are only
meaningful at benchmark scale.
"""

import importlib.util
from pathlib import Path

import pytest

pytestmark = pytest.mark.slow

_BENCH_PATH = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "bench_streaming_pipeline.py"
)


def _load_bench():
    spec = importlib.util.spec_from_file_location("bench_streaming_pipeline", _BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_bench_smoke_tiny_flow():
    bench = _load_bench()
    report = bench.run_comparison(
        scale=0.01,
        iterations=1,
        replans=1,
        simulation_runs=1,
        workers=1,
        max_alternatives=10,
        screening_beam=3,
    )
    assert set(report["arms"]) == {"eager", "streaming", "screening"}
    for arm in report["arms"].values():
        assert arm["seconds"] > 0
        assert arm["evaluations"] > 0
    assert report["equivalent_selections"]
    # the re-plan is served from the cache in the streaming arm
    assert report["arms"]["streaming"]["cache"]["hits"] > 0
    assert 0.0 <= report["arms"]["streaming"]["cache"]["hit_rate"] <= 1.0
    # the report renders without blowing up
    assert "streaming vs eager" in bench._render_report(report)
