"""Smoke-runs of the benchmark harnesses on tiny flows.

Keeps ``benchmarks/bench_streaming_pipeline.py``,
``benchmarks/bench_generation.py`` and ``benchmarks/run_all.py``
importable and their harnesses runnable from the test suite (one run,
smallest budgets), without asserting on wall-clock -- timing claims are
only meaningful at benchmark scale.
"""

import importlib.util
import json
from pathlib import Path

import pytest

pytestmark = pytest.mark.slow

_BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
_BENCH_PATH = _BENCH_DIR / "bench_streaming_pipeline.py"


def _load_module(path: Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _load_bench():
    return _load_module(_BENCH_PATH)


def test_bench_smoke_tiny_flow():
    bench = _load_bench()
    report = bench.run_comparison(
        scale=0.01,
        iterations=1,
        replans=1,
        simulation_runs=1,
        workers=1,
        max_alternatives=10,
        screening_beam=3,
    )
    assert set(report["arms"]) == {"eager", "streaming", "screening"}
    for arm in report["arms"].values():
        assert arm["seconds"] > 0
        assert arm["evaluations"] > 0
    assert report["equivalent_selections"]
    # the re-plan is served from the cache in the streaming arm
    assert report["arms"]["streaming"]["cache"]["hits"] > 0
    assert 0.0 <= report["arms"]["streaming"]["cache"]["hit_rate"] <= 1.0
    # the report renders without blowing up
    assert "streaming vs eager" in bench._render_report(report)


def test_generation_bench_smoke_tiny_flow():
    bench = _load_module(_BENCH_DIR / "bench_generation.py")
    report = bench.run_generation_bench(
        scale=0.01,
        pattern_budget=2,
        max_points_per_pattern=2,
        max_alternatives=30,
        repeats=1,
    )
    assert set(report["arms"]) == {"deep", "cow", "deep_noprefix", "cow_noprefix"}
    assert report["identical_alternatives"]
    for arm in report["arms"].values():
        assert arm["seconds"] > 0
        assert arm["alternatives"] > 0
        assert arm["candidates_per_second"] > 0
        assert arm["patterns_applied"] > 0
    # the uncached arms never touch the prefix cache
    assert report["arms"]["deep_noprefix"]["prefix_steps_reused"] == 0
    assert report["arms"]["cow_noprefix"]["prefix_steps_reused"] == 0
    assert report["application_reduction_deep"] >= 1.0
    assert report["application_reduction_cow"] >= 1.0
    rendered = bench._render_report(report)
    assert "cow vs deep" in rendered
    assert "prefix cache" in rendered


def test_profile_cache_bench_smoke_tiny_flow():
    bench = _load_module(_BENCH_DIR / "bench_profile_cache.py")
    report = bench.run_cache_bench(
        scale=0.01,
        pattern_budget=1,
        max_points_per_pattern=2,
        simulation_runs=1,
        max_alternatives=15,
    )
    assert set(report["arms"]) == {"cold", "warm_memory", "warm_disk"}
    assert report["identical_results"]
    for arm in report["arms"].values():
        assert arm["seconds"] > 0
    assert report["disk_entries"] > 0
    assert report["disk_bytes"] > 0
    # the warm-disk arm is served entirely from the persistent store
    warm_disk = report["arms"]["warm_disk"]["cache"]
    assert warm_disk["disk"]["hit_rate"] == 1.0
    assert warm_disk["overall"]["misses"] == 0
    rendered = bench._render_report(report)
    assert "warm disk vs cold" in rendered


def test_service_bench_smoke_tiny_flow():
    bench = _load_module(_BENCH_DIR / "bench_service.py")
    report = bench.run_service_bench(
        scale=0.01,
        pattern_budget=1,
        max_points_per_pattern=2,
        simulation_runs=1,
        max_alternatives=15,
        clients=2,
    )
    assert report["clients"] == 2
    assert report["identical_results"]
    assert report["solo_seconds_wall"] > 0
    assert report["service_seconds_wall"] > 0
    assert len(report["solo_seconds"]) == 2
    assert report["server_entries"] > 0
    # the fleet clients were served by the warm shared server, as
    # observed through the server's own /metrics endpoint
    assert report["fleet_hit_rate"] == 1.0
    assert report["request_seconds"]["count"] > 0
    assert report["request_seconds"]["p99"] >= report["request_seconds"]["p50"]
    assert report["server_golden"]["cache_hit_rate"] > 0
    rendered = bench._render_report(report)
    assert "service vs solo" in rendered
    assert "from /metrics" in rendered


def test_wire_bench_smoke_tiny_flow():
    bench = _load_module(_BENCH_DIR / "bench_wire.py")
    report = bench.run_wire_bench(
        scale=0.01,
        pattern_budget=1,
        max_points_per_pattern=2,
        simulation_runs=1,
        max_alternatives=15,
        repeats=1,
        connect_latency=0.005,
    )
    assert report["identical_results"]
    assert report["per_request_seconds"] > 0
    assert report["pooled_seconds"] > 0
    # the per-request arm pays one TCP connection per request; the
    # pooled arm reuses one keep-alive connection for the campaign
    per_request, pooled = report["per_request_wire"], report["pooled_wire"]
    assert per_request["connections_opened"] == per_request["requests"]
    assert pooled["connections_opened"] == 1
    assert pooled["reconnects"] == 0
    assert report["warm_hit_rate"] == 1.0
    # the cold campaign's end-of-stream /put is the big compressed body
    assert report["cold_publish_wire"]["compressed_requests"] >= 1
    rendered = bench._render_report(report)
    assert "pooled vs per-request" in rendered


def test_fleet_bench_smoke_tiny_flow():
    bench = _load_module(_BENCH_DIR / "bench_fleet.py")
    report = bench.run_fleet_bench(
        scale=0.01,
        pattern_budget=1,
        max_points_per_pattern=2,
        simulation_runs=1,
        max_alternatives=15,
        shard_counts=(1, 2),
        client_counts=(1, 2),
    )
    assert report["identical_results"]
    assert report["shard_counts"] == [1, 2]
    assert report["client_counts"] == [1, 2]
    # one cell per (shards, clients) pair, each timed and fully warm
    assert len(report["grid"]) == 4
    for cell in report["grid"]:
        assert cell["wall_seconds"] > 0
        assert len(cell["client_seconds"]) == cell["clients"]
        # warm, as the shards themselves observed through /metrics
        assert cell["fleet_hit_rate"] == 1.0
    # every shard channel actually carried traffic
    for counts in report["shard_bytes"].values():
        assert all(count > 0 for count in counts)
    # every shard reports served-request latency on /metrics
    for stats in report["shard_request_seconds"].values():
        for shard in stats:
            assert shard["count"] > 0
            assert shard["p99"] >= shard["p50"] >= 0
    assert report["speedup_sharded_vs_single"] > 0
    rendered = bench._render_report(report)
    assert "sharded vs single" in rendered


def test_execution_bench_smoke_tiny_flow():
    bench = _load_module(_BENCH_DIR / "bench_execution.py")
    report = bench.run_execution_bench(scale=0.02, k=3, repeats=1)
    assert report["identical_plans"], "executing the top-k mutated the plans"
    assert report["alternatives"] > 0
    assert report["skyline_size"] > 0
    calibration = report["calibration"]
    assert calibration["backend"] == "local"
    assert calibration["pool"] == "skyline"
    assert len(calibration["runs"]) == 3
    for run in calibration["runs"]:
        assert run["measured_ms"] > 0
        assert run["rows_loaded"] > 0
    # spearman is only asserted at benchmark scale; tiny runs just need
    # a defined value in range
    assert -1.0 <= report["spearman"] <= 1.0
    rendered = bench._render_report(report)
    assert "spearman" in rendered
    assert "measured ranking" in rendered


def test_obs_bench_smoke_tiny_flow():
    bench = _load_module(_BENCH_DIR / "bench_obs.py")
    report = bench.run_obs_bench(
        scale=0.01,
        pattern_budget=1,
        max_points_per_pattern=2,
        simulation_runs=1,
        max_alternatives=15,
        repeats=1,
    )
    # enabling metrics must never change what gets planned
    assert report["identical_results"]
    assert report["off_best_seconds"] > 0
    assert report["on_best_seconds"] > 0
    # the instrumented arm really recorded: one span per plan (1 cold +
    # 1 timed), plus histograms/counters from the evaluator and cache
    assert report["plan_spans_recorded"] == report["plans_per_arm"] == 2
    assert report["metric_points"]["histograms"] > 0
    assert report["metric_points"]["counters"] > 0
    # the overhead gate itself is only meaningful at benchmark scale;
    # tiny runs just need a defined number
    assert isinstance(report["overhead_fraction"], float)
    rendered = bench._render_report(report)
    assert "instrumentation overhead" in rendered


def test_run_all_smoke_writes_machine_readable_record(tmp_path):
    run_all = _load_module(_BENCH_DIR / "run_all.py")
    output = tmp_path / "BENCH_generation.json"
    assert run_all.main(["--tiny", "--output", str(output)]) == 0
    record = json.loads(output.read_text())
    assert record["tiny"] is True
    assert record["peak_rss_kb"] > 0
    generation = record["generation"]
    assert generation["identical_alternatives"]
    assert generation["candidates_per_second_cow"] > 0
    assert generation["speedup_cow_vs_deep"] > 0
    prefix = generation["prefix_cache"]
    assert prefix["patterns_applied_deep"] > 0
    assert prefix["application_reduction_deep"] >= 1.0
    assert prefix["application_reduction_cow"] >= 1.0
    streaming = record["streaming"]
    assert streaming["equivalent_selections"]
    assert streaming["speedup_streaming_vs_eager"] > 0
    profile_cache = record["profile_cache"]
    assert profile_cache["identical_results"]
    assert profile_cache["speedup_warm_disk_vs_cold"] > 0
    assert profile_cache["disk_entries"] > 0
    service = record["service"]
    assert service["identical_results"]
    assert service["speedup_service_vs_solo"] > 0
    assert service["server_entries"] > 0
    assert service["clients"] == 2
    assert service["fleet_hit_rate"] == 1.0
    assert service["request_seconds"]["count"] > 0
    wire = record["wire"]
    assert wire["identical_results"]
    assert wire["speedup_pooled_vs_per_request"] > 0
    assert wire["pooled_wire"]["connections_opened"] == 1
    assert wire["per_request_wire"]["connections_opened"] > 1
    assert wire["warm_hit_rate"] == 1.0
    fleet = record["fleet"]
    assert fleet["identical_results"]
    assert fleet["shard_counts"] == [1, 2]
    assert fleet["busiest_clients"] == 2
    assert fleet["speedup_sharded_vs_single"] > 0
    assert len(fleet["raw"]["grid"]) == 4
    execution = record["execution"]
    assert execution["identical_plans"]
    assert execution["backend"] == "local"
    assert execution["executed"] == 3
    assert -1.0 <= execution["spearman"] <= 1.0
    assert execution["raw"]["calibration"]["runs"]
    observability = record["observability"]
    assert observability["identical_results"]
    assert observability["plan_spans_recorded"] == 2
    assert observability["metric_points"]["histograms"] > 0
    assert observability["off_best_seconds"] > 0
    assert observability["on_best_seconds"] > 0
