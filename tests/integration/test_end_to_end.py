"""Integration tests: the full POIESIS pipeline on the paper's workloads.

These tests exercise the same paths as the demo walkthrough (Section 4):
importing a logical model, configuring the palette and policy, generating
and evaluating alternatives, inspecting the skyline and the measure
comparison, selecting a design and iterating.
"""

import pytest

from repro.core import (
    MeasureConstraint,
    Planner,
    ProcessingConfiguration,
    RedesignSession,
)
from repro.core.policies import ExhaustivePolicy
from repro.io.xlm import flow_from_xlm, flow_to_xlm
from repro.io.pdi import flow_from_pdi, flow_to_pdi
from repro.patterns.registry import default_palette, figure6_palette
from repro.quality.framework import QualityCharacteristic
from repro.workloads import purchases_flow, tpch_refresh_flow

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def tpch_small():
    return tpch_refresh_flow(scale=0.02)


def _config(**overrides):
    defaults = dict(
        pattern_budget=1,
        max_points_per_pattern=2,
        simulation_runs=1,
        max_alternatives=300,
    )
    defaults.update(overrides)
    return ProcessingConfiguration(**defaults)


class TestDemoPartP1:
    """Scatter-plot interaction: skyline points, per-flow measures, drill-down."""

    def test_tpch_planning_produces_skyline_with_measures(self, tpch_small):
        planner = Planner(configuration=_config(pattern_budget=2, max_points_per_pattern=2))
        result = planner.plan(tpch_small)
        assert len(result.alternatives) > 50
        assert result.skyline
        for alternative in result.skyline:
            profile = alternative.profile
            assert profile is not None
            for characteristic in result.characteristics:
                assert 0.0 <= profile.score(characteristic) <= 100.0
            # drill-down of a composite into detailed measures
            details = profile.expand(QualityCharacteristic.PERFORMANCE)
            assert details

    def test_skyline_is_small_fraction_of_space(self, tpch_small):
        planner = Planner(configuration=_config(pattern_budget=2, max_points_per_pattern=2))
        result = planner.plan(tpch_small)
        assert len(result.skyline) < len(result.alternatives) / 2

    def test_comparison_available_for_every_alternative(self, tpch_small):
        planner = Planner(configuration=_config())
        result = planner.plan(tpch_small)
        for alternative in result.alternatives:
            comparison = result.comparison(alternative)
            assert comparison.characteristic_changes


class TestDemoPartP2:
    """Configuring the processing parameters: palette restriction, policies, constraints."""

    def test_palette_restriction_limits_patterns_used(self, small_purchases):
        planner = Planner(
            configuration=_config(pattern_names=("ParallelizeTask", "AddCheckpoint")),
        )
        result = planner.plan(small_purchases)
        used = {name for alt in result.alternatives for name in alt.pattern_names}
        assert used <= {"ParallelizeTask", "AddCheckpoint"}

    def test_policy_choice_changes_the_explored_space(self, small_purchases):
        heuristic = Planner(configuration=_config(policy="heuristic"))
        exhaustive = Planner(
            configuration=_config(policy="exhaustive", max_points_per_pattern=6)
        )
        h_result = heuristic.plan(small_purchases)
        e_result = exhaustive.plan(small_purchases)
        assert len(e_result.alternatives) >= len(h_result.alternatives)

    def test_goal_driven_policy_focuses_on_priority(self, small_purchases):
        config = _config(
            policy="goal_driven",
            goal_priorities={QualityCharacteristic.RELIABILITY: 1.0},
        )
        result = Planner(configuration=config).plan(small_purchases)
        used = {name for alt in result.alternatives for name in alt.pattern_names}
        assert "AddCheckpoint" in used

    def test_constraints_prune_alternatives(self, small_purchases):
        unconstrained = Planner(configuration=_config(pattern_budget=2)).plan(small_purchases)
        baseline_cycle = unconstrained.baseline_profile.value("process_cycle_time_ms").value
        constrained_config = _config(
            pattern_budget=2,
            constraints=(
                MeasureConstraint("process_cycle_time_ms", max_value=baseline_cycle),
            ),
        )
        constrained = Planner(configuration=constrained_config).plan(small_purchases)
        assert constrained.discarded_by_constraints > 0
        for alternative in constrained.alternatives:
            assert alternative.profile.value("process_cycle_time_ms").value <= baseline_cycle


class TestDemoPartP3:
    """User-defined patterns joining the palette for future executions."""

    def test_custom_pattern_in_full_pipeline(self, small_purchases):
        from repro.etl.operations import OperationKind
        from repro.patterns.custom import CustomPatternSpec

        palette = default_palette()
        palette.register_custom(
            CustomPatternSpec(
                name="ArchiveRawExtract",
                description="archive raw extractions for audit",
                operation_kind=OperationKind.LOAD_FILE,
                improves=(QualityCharacteristic.RELIABILITY,),
                cost_per_tuple=0.004,
                prefer_near_sources=True,
            )
        )
        planner = Planner(palette=palette, configuration=_config(pattern_budget=1))
        result = planner.plan(small_purchases)
        used = {name for alt in result.alternatives for name in alt.pattern_names}
        assert "ArchiveRawExtract" in used


class TestImportAndIterate:
    def test_xlm_import_plan_select_iterate(self, tpch_small):
        # import from xLM (the format the demo loads)
        imported = flow_from_xlm(flow_to_xlm(tpch_small))
        session = RedesignSession(imported, configuration=_config())
        first = session.iterate()
        assert first.result.alternatives
        chosen = session.select_best(QualityCharacteristic.PERFORMANCE)
        assert chosen.flow is session.current_flow
        # second iteration starts from the improved flow and still finds options
        second = session.iterate()
        assert second.result.initial_flow is session.current_flow
        assert second.result.alternatives

    def test_pdi_import_is_equivalent_to_xlm_import(self, small_purchases):
        via_xlm = flow_from_xlm(flow_to_xlm(small_purchases))
        via_pdi = flow_from_pdi(flow_to_pdi(small_purchases))
        planner = Planner(configuration=_config(pattern_budget=1, max_points_per_pattern=1))
        result_xlm = planner.plan(via_xlm)
        result_pdi = planner.plan(via_pdi)
        assert len(result_xlm.alternatives) == len(result_pdi.alternatives)

    def test_iterative_improvement_of_primary_goal(self, small_purchases):
        session = RedesignSession(
            small_purchases,
            configuration=_config(pattern_budget=1, max_points_per_pattern=2),
        )
        initial_profile = session.current_profile
        session.run(iterations=2)
        final_profile = session.current_profile
        primary = session.planner.configuration.skyline_characteristics[0]
        assert final_profile.score(primary) >= initial_profile.score(primary)
        assert len(session.current_flow.applied_patterns) >= 2


class TestFigureShapes:
    """Directional checks matching the paper's Fig. 2 narratives."""

    def test_fig2a_performance_patterns_reduce_cycle_time(self):
        flow = purchases_flow(rows_per_source=5_000)
        planner = Planner(
            palette=figure6_palette(),
            configuration=_config(pattern_names=("ParallelizeTask",)),
        )
        result = planner.plan(flow)
        best = result.best_for(QualityCharacteristic.PERFORMANCE)
        comparison = result.comparison(best)
        cycle = comparison.measure_changes["process_cycle_time_ms"]
        assert cycle.new_value < cycle.baseline_value

    def test_fig2b_reliability_pattern_improves_reliability_at_small_cost(self):
        flow = purchases_flow(rows_per_source=5_000, failure_rate=0.3)
        planner = Planner(
            palette=figure6_palette(),
            configuration=_config(pattern_names=("AddCheckpoint",), simulation_runs=5),
        )
        result = planner.plan(flow)
        best = result.best_for(QualityCharacteristic.RELIABILITY)
        comparison = result.comparison(best)
        assert comparison.change(QualityCharacteristic.RELIABILITY) > 0
        lost = comparison.measure_changes["mean_lost_work_ms"]
        assert lost.new_value <= lost.baseline_value

    def test_data_quality_patterns_improve_data_quality(self):
        flow = purchases_flow(rows_per_source=5_000)
        planner = Planner(
            configuration=_config(
                pattern_names=("FilterNullValues", "RemoveDuplicateEntries", "CrosscheckSources"),
                pattern_budget=2,
                max_points_per_pattern=2,
            ),
        )
        result = planner.plan(flow)
        best = result.best_for(QualityCharacteristic.DATA_QUALITY)
        comparison = result.comparison(best)
        assert comparison.change(QualityCharacteristic.DATA_QUALITY) > 0
