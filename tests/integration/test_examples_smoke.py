"""Smoke-runs of every script under ``examples/``.

The README and docs/ point users at these scripts as the quickstart
surface, so each one must keep running exactly as documented::

    python examples/<name>.py

Each script is executed in a subprocess with the repository's ``src`` on
``PYTHONPATH``; all of them are built on tiny workloads (a few thousand
rows, one or two simulation runs), so the whole sweep costs seconds.
``generate_data.py`` runs first because ``import_models.py`` loads the
sample documents it materialises.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES_DIR = REPO_ROOT / "examples"

#: Scripts with an execution-order dependency, run first in this order.
_PRIORITY = ("generate_data.py",)


def _example_scripts() -> list[str]:
    names = sorted(
        path.name
        for path in EXAMPLES_DIR.glob("*.py")
        if not path.name.startswith("_")
    )
    ordered = [name for name in _PRIORITY if name in names]
    ordered.extend(name for name in names if name not in _PRIORITY)
    return ordered


def _run_example(name: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        env=env,
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=300,
    )


@pytest.fixture(scope="module", autouse=True)
def sample_documents():
    """Materialise ``examples/data/`` before any script that loads it."""
    result = _run_example("generate_data.py")
    assert result.returncode == 0, result.stderr


@pytest.mark.parametrize("name", _example_scripts())
def test_example_runs_clean(name):
    result = _run_example(name)
    assert result.returncode == 0, (
        f"{name} exited with {result.returncode}:\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{name} produced no output"


def test_every_example_is_covered():
    """The parametrisation tracks the directory: adding an example without
    it being picked up here is impossible, removing one retires its case."""
    assert set(_example_scripts()) == {
        path.name for path in EXAMPLES_DIR.glob("*.py")
    }
