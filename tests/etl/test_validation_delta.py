"""Tests of delta-based validation (:func:`validate_delta`).

The contract: for a flow derived from a validated parent by its recorded
delta, ``validate_delta(flow, delta, parent_issues)`` finds exactly the
same issue set as the ``validate_flow`` oracle -- while re-checking only
the delta neighbourhood.
"""

from __future__ import annotations

import pytest

from repro.etl.graph import ETLGraph, GraphDelta
from repro.etl.operations import Operation, OperationKind
from repro.etl.schema import DataType, Field, Schema
from repro.etl.validation import Severity, validate_delta, validate_flow
from repro.patterns.registry import default_palette


def _issue_set(issues):
    return {str(issue) for issue in issues}


def assert_oracle_agreement(child, parent_issues):
    got = _issue_set(validate_delta(child, child.delta, parent_issues))
    want = _issue_set(validate_flow(child))
    assert got == want


@pytest.fixture
def schema() -> Schema:
    return Schema.of(
        Field("id", DataType.INTEGER, nullable=False, key=True),
        Field("v", DataType.DECIMAL, nullable=True),
    )


class TestValidateDelta:
    def test_empty_delta_carries_parent_issues(self, linear_flow):
        child = linear_flow.copy(mode="cow")
        parent_issues = validate_flow(linear_flow)
        assert validate_delta(child, child.delta, parent_issues) == parent_issues

    def test_annotation_only_delta_short_circuits(self, linear_flow):
        child = linear_flow.copy(mode="cow")
        child.set_annotation("encryption", True)
        parent_issues = validate_flow(linear_flow)
        assert validate_delta(child, child.delta, parent_issues) == parent_issues

    def test_detects_join_arity_error_in_neighbourhood(self, schema):
        flow = ETLGraph("j")
        flow.add_operation(Operation(OperationKind.EXTRACT_TABLE, op_id="a", output_schema=schema))
        flow.add_operation(Operation(OperationKind.EXTRACT_TABLE, op_id="b", output_schema=schema))
        flow.add_operation(Operation(OperationKind.JOIN, op_id="j", output_schema=schema))
        flow.add_operation(Operation(OperationKind.LOAD_TABLE, op_id="l", output_schema=schema))
        flow.add_edge("a", "j")
        flow.add_edge("b", "j")
        flow.add_edge("j", "l")
        parent_issues = validate_flow(flow)
        child = flow.copy(mode="cow")
        child.remove_edge("b", "j")
        child.remove_operation("b")
        issues = validate_delta(child, child.delta, parent_issues)
        assert any(i.code == "JOIN_ARITY" and i.severity is Severity.ERROR for i in issues)
        assert_oracle_agreement(child, parent_issues)

    def test_detects_disconnection(self, schema):
        flow = ETLGraph("d")
        flow.add_operation(Operation(OperationKind.EXTRACT_TABLE, op_id="a", output_schema=schema))
        flow.add_operation(Operation(OperationKind.DERIVE, op_id="m", output_schema=schema))
        flow.add_operation(Operation(OperationKind.LOAD_TABLE, op_id="l", output_schema=schema))
        flow.add_edge("a", "m")
        flow.add_edge("m", "l")
        parent_issues = validate_flow(flow)
        child = flow.copy(mode="cow")
        child.remove_edge("m", "l")
        issues = validate_delta(child, child.delta, parent_issues)
        assert any(i.code == "DISCONNECTED" for i in issues)
        assert_oracle_agreement(child, parent_issues)

    def test_parent_warnings_survive_outside_neighbourhood(self, schema):
        # a NON_LOAD_SINK warning on an untouched exit must carry over
        flow = ETLGraph("w")
        flow.add_operation(Operation(OperationKind.EXTRACT_TABLE, op_id="a", output_schema=schema))
        flow.add_operation(Operation(OperationKind.DERIVE, op_id="m", output_schema=schema))
        flow.add_operation(Operation(OperationKind.DERIVE, op_id="end", output_schema=schema))
        flow.add_edge("a", "m")
        flow.add_edge("m", "end")
        parent_issues = validate_flow(flow)
        assert any(i.code == "NON_LOAD_SINK" for i in parent_issues)
        child = flow.copy(mode="cow")
        child.mutable_operation("a").config["rows"] = 10  # touches only "a"
        issues = validate_delta(child, child.delta, parent_issues)
        assert any(i.code == "NON_LOAD_SINK" and i.op_id == "end" for i in issues)
        assert_oracle_agreement(child, parent_issues)

    def test_issues_of_removed_operations_are_dropped(self, schema):
        flow = ETLGraph("r")
        flow.add_operation(Operation(OperationKind.EXTRACT_TABLE, op_id="a", output_schema=schema))
        flow.add_operation(Operation(OperationKind.DERIVE, op_id="bad_end", output_schema=schema))
        flow.add_edge("a", "bad_end")
        parent_issues = validate_flow(flow)
        assert any(i.op_id == "bad_end" for i in parent_issues)
        child = flow.copy(mode="cow")
        child.remove_operation("bad_end")
        issues = validate_delta(child, child.delta, parent_issues)
        assert not any(i.op_id == "bad_end" for i in issues)
        assert_oracle_agreement(child, parent_issues)


class TestOracleAgreementOnPatterns:
    """Every palette pattern applied everywhere agrees with the oracle."""

    @pytest.mark.parametrize("flow_fixture", ["linear_flow", "branching_flow"])
    def test_single_applications(self, flow_fixture, request):
        flow = request.getfixturevalue(flow_fixture)
        parent_issues = validate_flow(flow)
        checked = 0
        for pattern in default_palette():
            for point in pattern.find_application_points(flow):
                base = flow.copy(mode="cow")
                child = pattern.apply(base, point)
                assert child.delta is not None and child.derived_from(base)
                got = _issue_set(validate_delta(child, child.delta, parent_issues))
                want = _issue_set(validate_flow(child))
                assert got == want, pattern.name
                checked += 1
        assert checked > 0

    def test_chained_applications_with_composed_delta(self, branching_flow):
        parent_issues = validate_flow(branching_flow)
        base = branching_flow.copy(mode="cow")
        checked = 0
        for first in default_palette():
            points = first.find_application_points(base)
            if not points:
                continue
            mid = first.apply(base, points[0])
            for second in default_palette():
                second_points = second.find_application_points(mid)
                if not second_points:
                    continue
                final = second.apply(mid, second_points[0])
                composed = mid.delta.compose(final.delta)
                got = _issue_set(validate_delta(final, composed, parent_issues))
                want = _issue_set(validate_flow(final))
                assert got == want, (first.name, second.name)
                checked += 1
        assert checked > 0
