"""Tests of the copy-on-write layer of :class:`ETLGraph`.

Covers payload sharing and the copy-on-write fault (both directions),
delta recording and composition, incremental + annotation-aware
signatures, the relabel/shared-state interaction, and
materialize-on-pickle.
"""

from __future__ import annotations

import pickle

import pytest

from repro.etl.graph import ETLGraph, GraphDelta
from repro.etl.operations import Operation, OperationKind
from repro.etl.schema import DataType, Field, Schema


@pytest.fixture
def schema() -> Schema:
    return Schema.of(
        Field("id", DataType.INTEGER, nullable=False, key=True),
        Field("v", DataType.DECIMAL, nullable=True),
    )


@pytest.fixture
def chain(schema: Schema) -> ETLGraph:
    """extract -> derive -> load."""
    flow = ETLGraph("chain")
    flow.add_operation(Operation(OperationKind.EXTRACT_TABLE, op_id="src", output_schema=schema))
    flow.add_operation(Operation(OperationKind.DERIVE, op_id="mid", output_schema=schema))
    flow.add_operation(Operation(OperationKind.LOAD_TABLE, op_id="dst", output_schema=schema))
    flow.add_edge("src", "mid")
    flow.add_edge("mid", "dst")
    return flow


class TestCowSharing:
    def test_cow_copy_equals_parent(self, chain):
        child = chain.copy(mode="cow")
        assert child.signature() == chain.signature()
        assert child.structurally_equal(chain)
        assert child.operation("mid") is chain.operation("mid")  # payload shared

    def test_mutable_operation_materializes(self, chain):
        child = chain.copy(mode="cow")
        op = child.mutable_operation("mid")
        assert op is not chain.operation("mid")
        op.config["parallelism"] = 8
        assert chain.operation("mid").parallelism == 1
        assert child.operation("mid").parallelism == 8

    def test_parent_write_does_not_leak_into_child(self, chain):
        child = chain.copy(mode="cow")
        parent_op = chain.mutable_operation("mid")
        parent_op.config["parallelism"] = 4
        assert child.operation("mid").parallelism == 1

    def test_child_structural_mutation_is_isolated(self, chain):
        child = chain.copy(mode="cow")
        child.remove_edge("mid", "dst")
        child.remove_operation("dst")
        assert chain.has_edge("mid", "dst")
        assert "dst" in chain
        assert "dst" not in child

    def test_parent_structural_mutation_is_isolated(self, chain, schema):
        child = chain.copy(mode="cow")
        chain.add_operation(Operation(OperationKind.NOOP, op_id="extra", output_schema=schema))
        chain.add_edge("mid", "extra")
        assert "extra" not in child
        assert not child.has_edge("mid", "extra")

    def test_set_edge_schema_is_isolated(self, chain, schema):
        child = chain.copy(mode="cow")
        child.set_edge_schema("src", "mid", Schema())
        assert len(chain.edge("src", "mid").schema) == len(schema)
        assert len(child.edge("src", "mid").schema) == 0

    def test_chained_cow_copies(self, chain):
        child = chain.copy(mode="cow")
        child.mutable_operation("mid").config["parallelism"] = 2
        grandchild = child.copy(mode="cow")
        grandchild.mutable_operation("mid").config["parallelism"] = 3
        assert chain.operation("mid").parallelism == 1
        assert child.operation("mid").parallelism == 2
        assert grandchild.operation("mid").parallelism == 3

    def test_copy_mode_is_inherited(self, chain):
        child = chain.copy(mode="cow")
        grandchild = child.copy()  # no explicit mode: inherits "cow"
        assert grandchild.delta is not None
        assert grandchild.derived_from(child)

    def test_deep_copy_still_default(self, chain):
        clone = chain.copy()
        assert clone.delta is None
        assert clone.operation("mid") is not chain.operation("mid")

    def test_unknown_copy_mode_rejected(self, chain):
        with pytest.raises(ValueError):
            chain.copy(mode="shallow")


class TestDeltaRecording:
    def test_empty_delta_after_fork(self, chain):
        child = chain.copy(mode="cow")
        assert child.delta is not None and child.delta.is_empty()
        assert child.derived_from(chain)

    def test_structural_delta(self, chain, schema):
        child = chain.copy(mode="cow")
        child.remove_edge("mid", "dst")
        child.add_operation(Operation(OperationKind.CHECKPOINT, op_id="cp", output_schema=schema))
        child.add_edge("mid", "cp")
        child.add_edge("cp", "dst")
        delta = child.delta
        assert delta.ops_added == {"cp"}
        assert delta.edges_removed == {("mid", "dst")}
        assert delta.edges_added == {("mid", "cp"), ("cp", "dst")}
        assert delta.touched_operations(child) == {"mid", "cp", "dst"}

    def test_net_effect_cancellation(self, chain, schema):
        child = chain.copy(mode="cow")
        child.add_operation(Operation(OperationKind.NOOP, op_id="tmp", output_schema=schema))
        child.add_edge("mid", "tmp")
        child.remove_operation("tmp")
        assert child.delta.is_empty()
        assert child.signature() == chain.signature()

    def test_annotation_delta_and_signature(self, chain):
        child = chain.copy(mode="cow")
        child.set_annotation("encryption", True)
        assert child.delta.annotations_set == {"encryption": True}
        assert not child.delta.is_structural()
        assert child.signature() != chain.signature()
        assert child.signature()[:2] == chain.signature()[:2]  # structure unchanged

    def test_direct_annotation_assignment_still_in_signature(self, chain):
        # Legacy code assigns into the dict; the signature reads it live.
        child = chain.copy(mode="cow")
        child.annotations["resource_tier"] = "large"
        assert child.signature() != chain.signature()

    def test_compose(self):
        first = GraphDelta(ops_added={"a"}, edges_added={("x", "a")})
        second = GraphDelta(ops_removed={"a"}, edges_removed={("x", "a")}, ops_modified={"x"})
        merged = first.compose(second)
        assert merged.ops_added == set()
        assert merged.ops_removed == set()
        assert merged.edges_added == set()
        assert merged.edges_removed == set()
        assert merged.ops_modified == {"x"}

    def test_modify_then_remove_nets_to_removed(self):
        first = GraphDelta(ops_modified={"x"})
        second = GraphDelta(ops_removed={"x"})
        merged = first.compose(second)
        assert merged.ops_removed == {"x"}
        assert merged.ops_modified == set()


class TestIncrementalSignature:
    def test_signature_matches_full_recompute(self, chain, schema):
        child = chain.copy(mode="cow")
        child.remove_edge("mid", "dst")
        child.add_operation(Operation(OperationKind.CHECKPOINT, op_id="cp", output_schema=schema))
        child.add_edge("mid", "cp")
        child.add_edge("cp", "dst")
        child.mutable_operation("mid").config["parallelism"] = 4
        fresh = ETLGraph.from_dict(child.to_dict())
        assert child.signature() == fresh.signature()

    def test_signature_cache_invalidated_on_mutation(self, chain):
        child = chain.copy(mode="cow")
        before = child.signature()
        child.mutable_operation("mid").config["parallelism"] = 4
        assert child.signature() != before

    def test_signature_includes_parallelism_via_merge(self, chain):
        child = chain.copy(mode="cow")
        op = child.mutable_operation("mid")
        op.config["parallelism"] = 4
        nodes, _, _ = child.signature()
        assert ("mid", "derive", 4) in nodes

    def test_annotations_fold_into_signature(self, chain):
        a = chain.copy(mode="cow")
        b = chain.copy(mode="cow")
        a.set_annotation("encryption", True)
        b.set_annotation("encryption", True)
        assert a.signature() == b.signature()
        b.set_annotation("access_control", "role_based")
        assert a.signature() != b.signature()


class TestRelabelIsolation:
    def test_relabel_on_child_does_not_leak_into_parent(self, chain):
        child = chain.copy(mode="cow")
        child.relabel_operation("mid", "renamed")
        assert "mid" in chain and "renamed" not in chain
        assert chain.operation("mid").op_id == "mid"
        assert child.operation("renamed").op_id == "renamed"
        assert chain.has_edge("src", "mid") and chain.has_edge("mid", "dst")
        assert child.has_edge("src", "renamed") and child.has_edge("renamed", "dst")

    def test_relabel_on_parent_does_not_leak_into_child(self, chain):
        child = chain.copy(mode="cow")
        chain.relabel_operation("mid", "renamed")
        assert "mid" in child and "renamed" not in child
        assert child.operation("mid").op_id == "mid"

    def test_relabel_delta_and_signature(self, chain):
        child = chain.copy(mode="cow")
        child.relabel_operation("mid", "renamed")
        delta = child.delta
        assert "mid" in delta.ops_removed
        assert "renamed" in delta.ops_added
        fresh = ETLGraph.from_dict(child.to_dict())
        assert child.signature() == fresh.signature()


class TestPickling:
    def test_cow_child_pickles_self_contained(self, chain):
        child = chain.copy(mode="cow")
        restored = pickle.loads(pickle.dumps(child))
        assert restored.signature() == child.signature()
        # the unpickled graph owns its payloads: writes must not require
        # (or perform) any sharing bookkeeping
        restored.mutable_operation("mid").config["parallelism"] = 6
        assert chain.operation("mid").parallelism == 1

    def test_parent_and_child_pickled_together_stay_isolated(self, chain):
        child = chain.copy(mode="cow")
        parent2, child2 = pickle.loads(pickle.dumps((chain, child)))
        child2.mutable_operation("mid").config["parallelism"] = 9
        assert parent2.operation("mid").parallelism == 1

    def test_deep_graph_pickle_unchanged(self, chain):
        restored = pickle.loads(pickle.dumps(chain))
        assert restored.signature() == chain.signature()
        assert restored.structurally_equal(chain)
