"""Unit tests for sub-flow grafting (the mechanism behind pattern deployment)."""

import pytest

from repro.etl.graph import ETLGraph
from repro.etl.operations import Operation, OperationKind
from repro.etl.schema import DataType, Field, Schema
from repro.etl.subflow import insert_on_edge, replace_node, wrap_graph
from repro.etl.validation import is_valid


def _single_op_subflow(kind=OperationKind.FILTER_NULLS, name="cleanser") -> ETLGraph:
    subflow = ETLGraph(name="sub")
    subflow.add_operation(Operation(kind, op_id=name))
    return subflow


def _chain_subflow() -> ETLGraph:
    subflow = ETLGraph(name="chain_sub")
    subflow.add_operation(Operation(OperationKind.CHECKPOINT, op_id="persist"))
    subflow.add_operation(Operation(OperationKind.EXTRACT_SAVEPOINT, op_id="resume"))
    subflow.add_edge("persist", "resume")
    return subflow


class TestInsertOnEdge:
    def test_basic_insertion(self, linear_flow):
        edge = linear_flow.edges()[1]
        new_flow, insertion = insert_on_edge(
            linear_flow, edge.source, edge.target, _single_op_subflow()
        )
        assert new_flow.node_count == linear_flow.node_count + 1
        assert not new_flow.has_edge(edge.source, edge.target)
        added = insertion.added_operations[0]
        assert new_flow.has_edge(edge.source, added)
        assert new_flow.has_edge(added, edge.target)
        assert is_valid(new_flow)

    def test_host_flow_is_not_mutated(self, linear_flow):
        before = linear_flow.signature()
        edge = linear_flow.edges()[0]
        insert_on_edge(linear_flow, edge.source, edge.target, _single_op_subflow())
        assert linear_flow.signature() == before

    def test_schema_propagates_to_grafted_operation(self, linear_flow):
        edge = linear_flow.edges()[1]
        new_flow, insertion = insert_on_edge(
            linear_flow, edge.source, edge.target, _single_op_subflow()
        )
        grafted = new_flow.operation(insertion.added_operations[0])
        assert grafted.output_schema == edge.schema

    def test_multi_operation_subflow(self, linear_flow):
        edge = linear_flow.edges()[1]
        new_flow, insertion = insert_on_edge(
            linear_flow, edge.source, edge.target, _chain_subflow()
        )
        assert len(insertion.added_operations) == 2
        assert new_flow.node_count == linear_flow.node_count + 2
        assert is_valid(new_flow)

    def test_configure_callback(self, linear_flow):
        edge = linear_flow.edges()[0]
        seen = []

        def configure(operation, schema):
            seen.append(operation.op_id)
            operation.config["configured_for"] = len(schema)

        new_flow, insertion = insert_on_edge(
            linear_flow, edge.source, edge.target, _single_op_subflow(), configure=configure
        )
        assert seen == list(insertion.added_operations)
        grafted = new_flow.operation(insertion.added_operations[0])
        assert grafted.config["configured_for"] == len(edge.schema)

    def test_missing_edge_raises(self, linear_flow):
        with pytest.raises(KeyError):
            insert_on_edge(linear_flow, "nope", "load", _single_op_subflow())

    def test_subflow_with_two_exits_rejected(self, linear_flow):
        bad = ETLGraph("bad")
        bad.add_operation(Operation(OperationKind.SPLIT, op_id="s"))
        bad.add_operation(Operation(OperationKind.DERIVE, op_id="a"))
        bad.add_operation(Operation(OperationKind.DERIVE, op_id="b"))
        bad.add_edge("s", "a")
        bad.add_edge("s", "b")
        edge = linear_flow.edges()[0]
        with pytest.raises(ValueError, match="one entry and one exit"):
            insert_on_edge(linear_flow, edge.source, edge.target, bad)

    def test_lineage_recorded(self, linear_flow):
        edge = linear_flow.edges()[0]
        new_flow, _ = insert_on_edge(
            linear_flow, edge.source, edge.target, _single_op_subflow(), description="graft X"
        )
        assert "graft X" in new_flow.applied_patterns

    def test_repeated_grafts_get_unique_identifiers(self, linear_flow):
        edge = linear_flow.edges()[0]
        flow1, ins1 = insert_on_edge(linear_flow, edge.source, edge.target, _single_op_subflow())
        # graft again on the edge between the source and the first grafted op
        flow2, ins2 = insert_on_edge(flow1, edge.source, ins1.added_operations[0], _single_op_subflow())
        assert len(set(flow2.operation_ids())) == flow2.node_count


class TestReplaceNode:
    def test_basic_replacement(self, branching_flow):
        target = "enrich_" if "enrich_" in branching_flow else None
        # find the derive op by name
        derive = next(op for op in branching_flow.operations() if op.name == "enrich")
        sub = ETLGraph("replacement")
        sub.add_operation(Operation(OperationKind.PARTITION, op_id="p"))
        sub.add_operation(Operation(OperationKind.DERIVE, op_id="d1"))
        sub.add_operation(Operation(OperationKind.MERGE, op_id="m"))
        sub.add_edge("p", "d1")
        sub.add_edge("d1", "m")
        new_flow, insertion = replace_node(branching_flow, derive.op_id, sub)
        assert derive.op_id not in new_flow
        assert new_flow.node_count == branching_flow.node_count + 2
        assert insertion.removed_operations == (derive.op_id,)
        assert is_valid(new_flow)

    def test_incident_edges_rewired(self, linear_flow):
        derive = next(op for op in linear_flow.operations() if op.kind is OperationKind.DERIVE)
        preds = [p.op_id for p in linear_flow.predecessors(derive.op_id)]
        succs = [s.op_id for s in linear_flow.successors(derive.op_id)]
        sub = _single_op_subflow(OperationKind.DERIVE, "new_derive")
        new_flow, insertion = replace_node(linear_flow, derive.op_id, sub)
        grafted = insertion.added_operations[0]
        for pred in preds:
            assert new_flow.has_edge(pred, grafted)
        for succ in succs:
            assert new_flow.has_edge(grafted, succ)

    def test_configure_receives_replaced_operation(self, linear_flow):
        derive = next(op for op in linear_flow.operations() if op.kind is OperationKind.DERIVE)

        def configure(new_op, replaced):
            new_op.properties.cost_per_tuple = replaced.properties.cost_per_tuple

        sub = _single_op_subflow(OperationKind.DERIVE, "copy")
        new_flow, insertion = replace_node(linear_flow, derive.op_id, sub, configure=configure)
        grafted = new_flow.operation(insertion.added_operations[0])
        assert grafted.properties.cost_per_tuple == pytest.approx(
            derive.properties.cost_per_tuple
        )

    def test_missing_node_raises(self, linear_flow):
        with pytest.raises(KeyError):
            replace_node(linear_flow, "ghost", _single_op_subflow())

    def test_host_not_mutated(self, linear_flow):
        before = linear_flow.signature()
        derive = next(op for op in linear_flow.operations() if op.kind is OperationKind.DERIVE)
        replace_node(linear_flow, derive.op_id, _single_op_subflow(OperationKind.DERIVE))
        assert linear_flow.signature() == before


class TestWrapGraph:
    def test_annotation_applied_to_copy(self, linear_flow):
        new_flow, insertion = wrap_graph(linear_flow, "encryption", True)
        assert new_flow.annotations["encryption"] is True
        assert "encryption" not in linear_flow.annotations
        assert insertion.added_operations == ()

    def test_description_recorded(self, linear_flow):
        new_flow, _ = wrap_graph(linear_flow, "resource_tier", "large", description="upgrade")
        assert "upgrade" in new_flow.applied_patterns
