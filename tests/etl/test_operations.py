"""Unit tests for the operation taxonomy."""

import pytest

from repro.etl.operations import Operation, OperationCategory, OperationKind
from repro.etl.properties import OperationProperties
from repro.etl.schema import DataType, Field, Schema


class TestOperationKind:
    def test_every_kind_has_a_category(self):
        for kind in OperationKind:
            assert isinstance(kind.category, OperationCategory)

    def test_source_kinds(self):
        assert OperationKind.EXTRACT_TABLE.is_source
        assert OperationKind.EXTRACT_FILE.is_source
        assert not OperationKind.FILTER.is_source

    def test_sink_kinds(self):
        assert OperationKind.LOAD_TABLE.is_sink
        assert OperationKind.LOAD_FILE.is_sink
        assert not OperationKind.DERIVE.is_sink

    def test_blocking_kinds(self):
        assert OperationKind.SORT.is_blocking
        assert OperationKind.AGGREGATE.is_blocking
        assert not OperationKind.FILTER.is_blocking

    def test_router_kinds(self):
        assert OperationKind.SPLIT.is_router
        assert OperationKind.PARTITION.is_router
        assert not OperationKind.JOIN.is_router

    def test_merger_kinds(self):
        assert OperationKind.JOIN.is_merger
        assert OperationKind.MERGE.is_merger
        assert OperationKind.UNION.is_merger
        assert not OperationKind.SPLIT.is_merger

    def test_data_quality_category(self):
        assert OperationKind.DEDUPLICATE.category is OperationCategory.DATA_QUALITY
        assert OperationKind.FILTER_NULLS.category is OperationCategory.DATA_QUALITY
        assert OperationKind.CHECKPOINT.category is OperationCategory.CONTROL


class TestOperation:
    def test_generated_identifiers_are_unique(self):
        a = Operation(OperationKind.FILTER)
        b = Operation(OperationKind.FILTER)
        assert a.op_id != b.op_id
        assert a.op_id.startswith("filter_")

    def test_name_defaults_to_id(self):
        op = Operation(OperationKind.DERIVE)
        assert op.name == op.op_id

    def test_explicit_identifiers_are_kept(self):
        op = Operation(OperationKind.FILTER, name="my filter", op_id="f1")
        assert op.op_id == "f1"
        assert op.name == "my filter"

    def test_category_and_flags_delegate_to_kind(self):
        op = Operation(OperationKind.EXTRACT_TABLE)
        assert op.is_source
        assert not op.is_sink
        assert op.category is OperationCategory.EXTRACTION

    def test_parallelism_defaults_to_one(self):
        op = Operation(OperationKind.DERIVE)
        assert op.parallelism == 1
        op.config["parallelism"] = 8
        assert op.parallelism == 8

    def test_copy_is_independent(self):
        op = Operation(
            OperationKind.FILTER,
            config={"predicate": "x > 1"},
            properties=OperationProperties(selectivity=0.4),
        )
        clone = op.copy()
        clone.config["predicate"] = "changed"
        clone.properties.selectivity = 0.9
        assert op.config["predicate"] == "x > 1"
        assert op.properties.selectivity == 0.4

    def test_copy_with_overrides(self):
        op = Operation(OperationKind.FILTER, name="original")
        clone = op.copy(name="renamed")
        assert clone.name == "renamed"
        assert clone.kind is OperationKind.FILTER

    def test_round_trip_serialisation(self):
        schema = Schema.of(Field("id", DataType.INTEGER, nullable=False, key=True))
        op = Operation(
            OperationKind.AGGREGATE,
            name="agg",
            op_id="agg_1",
            output_schema=schema,
            config={"group_by": ["id"]},
            properties=OperationProperties(cost_per_tuple=0.2, selectivity=0.1),
        )
        restored = Operation.from_dict(op.to_dict())
        assert restored.op_id == "agg_1"
        assert restored.kind is OperationKind.AGGREGATE
        assert restored.output_schema == schema
        assert restored.config == {"group_by": ["id"]}
        assert restored.properties.cost_per_tuple == pytest.approx(0.2)
        assert restored.properties.selectivity == pytest.approx(0.1)


class TestOperationProperties:
    def test_defaults_are_sane(self):
        props = OperationProperties()
        assert props.selectivity == 1.0
        assert props.failure_rate == 0.0

    @pytest.mark.parametrize("field", ["error_rate", "null_rate", "duplicate_rate", "failure_rate"])
    def test_rates_must_be_probabilities(self, field):
        with pytest.raises(ValueError):
            OperationProperties(**{field: 1.5})
        with pytest.raises(ValueError):
            OperationProperties(**{field: -0.1})

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            OperationProperties(cost_per_tuple=-1.0)
        with pytest.raises(ValueError):
            OperationProperties(fixed_cost=-1.0)
        with pytest.raises(ValueError):
            OperationProperties(selectivity=-0.1)

    def test_copy_is_independent(self):
        props = OperationProperties(extra={"note": "x"})
        clone = props.copy()
        clone.extra["note"] = "changed"
        clone.cost_per_tuple = 99.0
        assert props.extra["note"] == "x"
        assert props.cost_per_tuple != 99.0

    def test_round_trip_serialisation(self):
        props = OperationProperties(
            cost_per_tuple=0.5, selectivity=0.3, failure_rate=0.1, extra={"k": 1}
        )
        restored = OperationProperties.from_dict(props.to_dict())
        assert restored.cost_per_tuple == pytest.approx(0.5)
        assert restored.selectivity == pytest.approx(0.3)
        assert restored.failure_rate == pytest.approx(0.1)
        assert restored.extra == {"k": 1}

    def test_from_dict_ignores_unknown_keys(self):
        restored = OperationProperties.from_dict({"cost_per_tuple": 0.2, "bogus": 1})
        assert restored.cost_per_tuple == pytest.approx(0.2)
