"""Unit tests for the ETL flow graph."""

import pytest

from repro.etl.graph import ETLGraph
from repro.etl.operations import Operation, OperationKind
from repro.etl.schema import DataType, Field, Schema


def _op(kind: OperationKind, op_id: str, schema: Schema | None = None) -> Operation:
    return Operation(kind, op_id=op_id, output_schema=schema or Schema())


@pytest.fixture
def diamond() -> ETLGraph:
    """extract -> split -> (a, b) -> merge -> load"""
    schema = Schema.of(Field("id", DataType.INTEGER, nullable=False, key=True))
    flow = ETLGraph("diamond")
    flow.add_operation(_op(OperationKind.EXTRACT_TABLE, "src", schema))
    flow.add_operation(_op(OperationKind.SPLIT, "split", schema))
    flow.add_operation(_op(OperationKind.DERIVE, "branch_a", schema))
    flow.add_operation(_op(OperationKind.DERIVE, "branch_b", schema))
    flow.add_operation(_op(OperationKind.MERGE, "merge", schema))
    flow.add_operation(_op(OperationKind.LOAD_TABLE, "load", schema))
    flow.add_edge("src", "split")
    flow.add_edge("split", "branch_a")
    flow.add_edge("split", "branch_b")
    flow.add_edge("branch_a", "merge")
    flow.add_edge("branch_b", "merge")
    flow.add_edge("merge", "load")
    return flow


class TestConstruction:
    def test_add_duplicate_operation_rejected(self, diamond):
        with pytest.raises(ValueError, match="duplicate"):
            diamond.add_operation(_op(OperationKind.FILTER, "src"))

    def test_add_edge_unknown_nodes_rejected(self, diamond):
        with pytest.raises(KeyError):
            diamond.add_edge("src", "ghost")
        with pytest.raises(KeyError):
            diamond.add_edge("ghost", "load")

    def test_self_loop_rejected(self, diamond):
        with pytest.raises(ValueError, match="self-loop"):
            diamond.add_edge("src", "src")

    def test_cycle_rejected_and_rolled_back(self, diamond):
        with pytest.raises(ValueError, match="cycle"):
            diamond.add_edge("load", "src")
        assert not diamond.has_edge("load", "src")

    def test_default_edge_schema_is_source_output(self, diamond):
        edge = diamond.edge("src", "split")
        assert edge.schema == diamond.operation("src").output_schema

    def test_remove_edge_and_operation(self, diamond):
        diamond.remove_edge("merge", "load")
        assert not diamond.has_edge("merge", "load")
        diamond.remove_operation("load")
        assert "load" not in diamond

    def test_remove_missing_raises(self, diamond):
        with pytest.raises(KeyError):
            diamond.remove_edge("src", "load")
        with pytest.raises(KeyError):
            diamond.remove_operation("ghost")

    def test_relabel_operation(self, diamond):
        diamond.relabel_operation("branch_a", "branch_alpha")
        assert "branch_alpha" in diamond
        assert "branch_a" not in diamond
        assert diamond.has_edge("split", "branch_alpha")
        assert diamond.has_edge("branch_alpha", "merge")
        assert diamond.edge("split", "branch_alpha").target == "branch_alpha"

    def test_relabel_collision_rejected(self, diamond):
        with pytest.raises(ValueError):
            diamond.relabel_operation("branch_a", "branch_b")

    def test_set_edge_schema(self, diamond):
        new_schema = Schema.of(Field("x", DataType.STRING))
        diamond.set_edge_schema("src", "split", new_schema)
        assert diamond.edge("src", "split").schema == new_schema


class TestAccess:
    def test_len_and_counts(self, diamond):
        assert len(diamond) == 6
        assert diamond.node_count == 6
        assert diamond.edge_count == 6

    def test_unknown_operation_raises(self, diamond):
        with pytest.raises(KeyError):
            diamond.operation("ghost")
        with pytest.raises(KeyError):
            diamond.edge("src", "merge")

    def test_sources_and_sinks(self, diamond):
        assert [op.op_id for op in diamond.sources()] == ["src"]
        assert [op.op_id for op in diamond.sinks()] == ["load"]

    def test_neighbours(self, diamond):
        assert {op.op_id for op in diamond.successors("split")} == {"branch_a", "branch_b"}
        assert {op.op_id for op in diamond.predecessors("merge")} == {"branch_a", "branch_b"}
        assert diamond.in_degree("merge") == 2
        assert diamond.out_degree("split") == 2

    def test_topological_order_respects_edges(self, diamond):
        order = [op.op_id for op in diamond.topological_order()]
        assert order.index("src") < order.index("split")
        assert order.index("split") < order.index("branch_a")
        assert order.index("merge") < order.index("load")

    def test_operations_of_kind(self, diamond):
        derives = diamond.operations_of_kind(OperationKind.DERIVE)
        assert {op.op_id for op in derives} == {"branch_a", "branch_b"}


class TestStructureMetrics:
    def test_longest_path(self, diamond):
        assert diamond.longest_path_length() == 4
        path_ids = [op.op_id for op in diamond.longest_path()]
        assert path_ids[0] == "src"
        assert path_ids[-1] == "load"

    def test_empty_flow_metrics(self):
        empty = ETLGraph("empty")
        assert empty.longest_path_length() == 0
        assert empty.longest_path() == []
        assert empty.coupling() == 0.0
        assert empty.is_connected()

    def test_upstream_downstream(self, diamond):
        assert diamond.upstream_of("merge") == {"src", "split", "branch_a", "branch_b"}
        assert diamond.downstream_of("split") == {"branch_a", "branch_b", "merge", "load"}

    def test_distances(self, diamond):
        assert diamond.distance_from_sources("src") == 0
        assert diamond.distance_from_sources("merge") == 3
        assert diamond.distance_to_sinks("merge") == 1
        assert diamond.distance_to_sinks("load") == 0

    def test_distance_unknown_op_raises(self, diamond):
        with pytest.raises(KeyError):
            diamond.distance_from_sources("ghost")

    def test_coupling(self, diamond):
        assert diamond.coupling() == pytest.approx(1.0)

    def test_merge_element_count(self, diamond):
        # Only the merge node has in-degree > 1 / merger kind.
        assert diamond.merge_element_count() == 1

    def test_connectivity(self, diamond):
        assert diamond.is_connected()
        diamond.add_operation(_op(OperationKind.EXTRACT_TABLE, "orphan"))
        assert not diamond.is_connected()


class TestCopyAndSignature:
    def test_copy_is_deep_for_operations(self, diamond):
        clone = diamond.copy()
        clone.operation("branch_a").config["marker"] = True
        assert "marker" not in diamond.operation("branch_a").config

    def test_copy_preserves_structure(self, diamond):
        clone = diamond.copy()
        assert clone.structurally_equal(diamond)
        assert clone.signature() == diamond.signature()

    def test_structural_inequality_after_change(self, diamond):
        clone = diamond.copy()
        clone.remove_edge("merge", "load")
        assert not clone.structurally_equal(diamond)
        assert clone.signature() != diamond.signature()

    def test_signature_sensitive_to_parallelism(self, diamond):
        clone = diamond.copy()
        clone.operation("branch_a").config["parallelism"] = 4
        assert clone.signature() != diamond.signature()

    def test_lineage_recording(self, diamond):
        diamond.record_pattern("AddCheckpoint @ edge merge->load")
        clone = diamond.copy()
        assert clone.applied_patterns == ["AddCheckpoint @ edge merge->load"]


class TestSerialisation:
    def test_round_trip(self, diamond):
        diamond.annotations["encryption"] = True
        diamond.record_pattern("something")
        restored = ETLGraph.from_dict(diamond.to_dict())
        assert restored.structurally_equal(diamond)
        assert restored.annotations == {"encryption": True}
        assert restored.applied_patterns == ["something"]
        assert restored.name == diamond.name

    def test_to_networkx_is_a_copy(self, diamond):
        g = diamond.to_networkx()
        g.remove_node("load")
        assert "load" in diamond
