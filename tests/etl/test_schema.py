"""Unit tests for the schema model."""

import pytest

from repro.etl.schema import EMPTY_SCHEMA, DataType, Field, Schema


class TestDataType:
    def test_numeric_classification(self):
        assert DataType.INTEGER.is_numeric
        assert DataType.DECIMAL.is_numeric
        assert not DataType.STRING.is_numeric
        assert not DataType.DATE.is_numeric

    def test_temporal_classification(self):
        assert DataType.DATE.is_temporal
        assert DataType.TIMESTAMP.is_temporal
        assert not DataType.INTEGER.is_temporal

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("int", DataType.INTEGER),
            ("BIGINT", DataType.INTEGER),
            ("varchar", DataType.STRING),
            ("Double", DataType.DECIMAL),
            ("datetime", DataType.TIMESTAMP),
            ("bool", DataType.BOOLEAN),
            ("blob", DataType.BINARY),
            ("date", DataType.DATE),
        ],
    )
    def test_parse_aliases(self, text, expected):
        assert DataType.parse(text) is expected

    def test_parse_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown data type"):
            DataType.parse("geometry")


class TestField:
    def test_defaults(self):
        field = Field("amount")
        assert field.dtype is DataType.STRING
        assert field.nullable
        assert not field.key

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Field("")

    def test_renamed_preserves_other_attributes(self):
        field = Field("a", DataType.INTEGER, nullable=False, key=True)
        renamed = field.renamed("b")
        assert renamed.name == "b"
        assert renamed.dtype is DataType.INTEGER
        assert not renamed.nullable
        assert renamed.key
        # original untouched (frozen dataclass)
        assert field.name == "a"

    def test_with_nullability(self):
        field = Field("a", nullable=True)
        assert not field.with_nullability(False).nullable


class TestSchemaConstruction:
    def test_of_and_len(self, simple_schema):
        assert len(simple_schema) == 4
        assert simple_schema.names == ("id", "name", "amount", "created_at")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Schema.of(Field("a"), Field("a"))

    def test_from_pairs_and_mapping(self):
        schema = Schema.from_pairs([("a", DataType.INTEGER), ("b", DataType.STRING)])
        assert schema.names == ("a", "b")
        schema2 = Schema.from_mapping({"x": DataType.DATE})
        assert schema2.field("x").dtype is DataType.DATE

    def test_empty_schema_constant(self):
        assert len(EMPTY_SCHEMA) == 0


class TestSchemaIntrospection:
    def test_contains_and_get(self, simple_schema):
        assert "id" in simple_schema
        assert "missing" not in simple_schema
        assert simple_schema.get("missing") is None
        assert simple_schema.get("amount").dtype is DataType.DECIMAL

    def test_field_raises_on_missing(self, simple_schema):
        with pytest.raises(KeyError):
            simple_schema.field("missing")

    def test_classified_fields(self, simple_schema):
        assert [f.name for f in simple_schema.key_fields] == ["id"]
        assert [f.name for f in simple_schema.numeric_fields] == ["id", "amount"]
        assert [f.name for f in simple_schema.temporal_fields] == ["created_at"]
        assert "id" not in [f.name for f in simple_schema.nullable_fields]

    def test_iteration(self, simple_schema):
        assert [f.name for f in simple_schema] == list(simple_schema.names)


class TestSchemaDerivation:
    def test_project(self, simple_schema):
        projected = simple_schema.project(["amount", "id"])
        assert projected.names == ("amount", "id")

    def test_project_missing_raises(self, simple_schema):
        with pytest.raises(KeyError):
            simple_schema.project(["nope"])

    def test_drop(self, simple_schema):
        assert simple_schema.drop(["name"]).names == ("id", "amount", "created_at")

    def test_drop_missing_raises(self, simple_schema):
        with pytest.raises(KeyError):
            simple_schema.drop(["nope"])

    def test_extend(self, simple_schema):
        extended = simple_schema.extend(Field("extra", DataType.BOOLEAN))
        assert "extra" in extended
        assert len(extended) == len(simple_schema) + 1

    def test_rename(self, simple_schema):
        renamed = simple_schema.rename({"id": "identifier"})
        assert "identifier" in renamed
        assert "id" not in renamed

    def test_rename_missing_raises(self, simple_schema):
        with pytest.raises(KeyError):
            simple_schema.rename({"nope": "x"})

    def test_merge_disambiguates_collisions(self, simple_schema):
        merged = simple_schema.merge(simple_schema)
        assert len(merged) == 2 * len(simple_schema)
        assert "r_id" in merged

    def test_merge_with_custom_prefix(self, simple_schema):
        merged = simple_schema.merge(simple_schema, prefix="other_")
        assert "other_id" in merged

    def test_without_nulls(self, simple_schema):
        assert simple_schema.without_nulls().nullable_fields == ()

    def test_compatibility(self, simple_schema):
        subset = simple_schema.project(["id", "amount"])
        assert simple_schema.is_compatible_with(subset)
        assert not subset.is_compatible_with(simple_schema)

    def test_compatibility_requires_same_types(self, simple_schema):
        other = Schema.of(Field("id", DataType.STRING))
        assert not simple_schema.is_compatible_with(other)


class TestSchemaSerialisation:
    def test_round_trip(self, simple_schema):
        data = simple_schema.to_dict()
        restored = Schema.from_dict(data)
        assert restored == simple_schema

    def test_to_dict_structure(self, simple_schema):
        data = simple_schema.to_dict()
        assert data[0] == {"name": "id", "dtype": "integer", "nullable": False, "key": True}
