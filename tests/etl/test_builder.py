"""Unit tests for the fluent flow builder."""

import pytest

from repro.etl.builder import FlowBuilder
from repro.etl.operations import OperationKind
from repro.etl.schema import DataType, Field, Schema
from repro.etl.validation import ValidationError


@pytest.fixture
def schema() -> Schema:
    return Schema.of(
        Field("id", DataType.INTEGER, nullable=False, key=True),
        Field("value", DataType.DECIMAL),
        Field("label", DataType.STRING),
    )


class TestLinearConstruction:
    def test_chaining_uses_previous_operation(self, schema):
        builder = FlowBuilder("chain")
        builder.extract_table("src", schema=schema, rows=10)
        builder.filter("flt", predicate="value > 0")
        builder.load_table("sink")
        flow = builder.build()
        assert flow.has_edge(flow.sources()[0].op_id, flow.operations()[1].op_id)
        assert flow.node_count == 3
        assert flow.edge_count == 2

    def test_explicit_after(self, schema):
        builder = FlowBuilder()
        src = builder.extract_table("src", schema=schema, rows=10)
        flt = builder.filter("flt", predicate="p", after=src)
        der = builder.derive("der", after=src)
        builder.load_table("sink_a", after=flt)
        builder.load_table("sink_b", after=der)
        flow = builder.build()
        assert flow.out_degree(src.op_id) == 2

    def test_schema_propagates_from_predecessor(self, schema):
        builder = FlowBuilder()
        src = builder.extract_table("src", schema=schema, rows=10)
        flt = builder.filter("flt", predicate="p", after=src)
        assert flt.output_schema == schema

    def test_project_narrows_schema(self, schema):
        builder = FlowBuilder()
        builder.extract_table("src", schema=schema, rows=10)
        projected = builder.project("proj", keep=["id", "value"])
        assert projected.output_schema.names == ("id", "value")

    def test_join_merges_schemas(self, schema):
        builder = FlowBuilder()
        a = builder.extract_table("a", schema=schema, rows=10)
        b = builder.extract_table("b", schema=schema, rows=10)
        join = builder.join("j", a, b, on=["id"])
        builder.load_table("sink", after=join)
        assert len(join.output_schema) == 2 * len(schema)
        assert builder.build().merge_element_count() == 1


class TestOperationConfiguration:
    def test_extract_properties(self, schema):
        builder = FlowBuilder()
        src = builder.extract_table(
            "src", schema=schema, rows=123, null_rate=0.1, duplicate_rate=0.05,
            error_rate=0.02, freshness_lag=15.0, update_frequency=4.0,
        )
        assert src.config["rows"] == 123
        assert src.properties.null_rate == pytest.approx(0.1)
        assert src.properties.freshness_lag == pytest.approx(15.0)
        assert src.kind is OperationKind.EXTRACT_TABLE

    def test_extract_file_defaults_path(self, schema):
        builder = FlowBuilder()
        src = builder.extract_file("raw", schema=schema, rows=5)
        assert src.config["path"] == "raw.csv"

    def test_filter_selectivity(self, schema):
        builder = FlowBuilder()
        builder.extract_table("src", schema=schema, rows=10)
        flt = builder.filter("flt", predicate="value > 0", selectivity=0.25)
        assert flt.properties.selectivity == pytest.approx(0.25)
        assert flt.config["predicate"] == "value > 0"

    def test_aggregate_is_blocking_with_fixed_cost(self, schema):
        builder = FlowBuilder()
        builder.extract_table("src", schema=schema, rows=10)
        agg = builder.aggregate("agg", group_by=["label"], selectivity=0.2)
        assert agg.kind.is_blocking
        assert agg.properties.fixed_cost > 0

    def test_partition_and_split(self, schema):
        builder = FlowBuilder()
        builder.extract_table("src", schema=schema, rows=10)
        part = builder.partition("part", key="id", partitions=3)
        assert part.config["partitions"] == 3
        assert part.kind.is_router

    def test_lookup_and_surrogate_key(self, schema):
        builder = FlowBuilder()
        builder.extract_table("src", schema=schema, rows=10)
        lk = builder.lookup("lk", reference="dim", on=["id"], error_rate=0.01)
        sk = builder.surrogate_key("sk", key_field="surrogate")
        assert lk.config["reference"] == "dim"
        assert sk.config["key_field"] == "surrogate"

    def test_load_table_defaults_table_name(self, schema):
        builder = FlowBuilder()
        builder.extract_table("src", schema=schema, rows=10)
        sink = builder.load_table("load_fact")
        assert sink.config["table"] == "load_fact"


class TestBuildValidation:
    def test_build_validates_by_default(self, schema):
        builder = FlowBuilder()
        src = builder.extract_table("src", schema=schema, rows=10)
        builder.extract_table("orphan", schema=schema, rows=10)
        builder.load_table("sink", after=src)
        with pytest.raises(ValidationError):
            builder.build()

    def test_build_can_skip_validation(self, schema):
        builder = FlowBuilder()
        src = builder.extract_table("src", schema=schema, rows=10)
        builder.extract_table("orphan", schema=schema, rows=10)
        builder.load_table("sink", after=src)
        flow = builder.build(validate=False)
        assert flow.node_count == 3

    def test_flow_property_returns_live_reference(self, schema):
        builder = FlowBuilder("live")
        builder.extract_table("src", schema=schema, rows=10)
        assert builder.flow.node_count == 1
