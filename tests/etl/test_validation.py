"""Unit tests for flow validation."""

import pytest

from repro.etl.graph import ETLGraph
from repro.etl.operations import Operation, OperationKind
from repro.etl.schema import DataType, Field, Schema
from repro.etl.validation import (
    Severity,
    ValidationError,
    is_valid,
    validate_flow,
)


def _schema() -> Schema:
    return Schema.of(Field("id", DataType.INTEGER, nullable=False, key=True))


def _flow(*ops_and_edges) -> ETLGraph:
    flow = ETLGraph("t")
    for op in ops_and_edges[0]:
        flow.add_operation(op)
    for edge in ops_and_edges[1]:
        flow.add_edge(*edge)
    return flow


def _op(kind, op_id):
    return Operation(kind, op_id=op_id, output_schema=_schema())


class TestStructuralChecks:
    def test_empty_flow_is_an_error(self):
        issues = validate_flow(ETLGraph("empty"))
        assert any(i.code == "EMPTY_FLOW" for i in issues)
        assert not is_valid(ETLGraph("empty"))

    def test_valid_linear_flow(self, linear_flow):
        assert is_valid(linear_flow)
        assert validate_flow(linear_flow) == []

    def test_disconnected_flow(self):
        flow = _flow(
            [
                _op(OperationKind.EXTRACT_TABLE, "a"),
                _op(OperationKind.LOAD_TABLE, "b"),
                _op(OperationKind.EXTRACT_TABLE, "c"),
                _op(OperationKind.LOAD_TABLE, "d"),
            ],
            [("a", "b"), ("c", "d")],
        )
        codes = {i.code for i in validate_flow(flow)}
        assert "DISCONNECTED" in codes

    def test_isolated_operation(self):
        flow = _flow(
            [
                _op(OperationKind.EXTRACT_TABLE, "a"),
                _op(OperationKind.LOAD_TABLE, "b"),
                _op(OperationKind.FILTER, "floating"),
            ],
            [("a", "b")],
        )
        codes = {i.code for i in validate_flow(flow)}
        assert "ISOLATED_OPERATION" in codes

    def test_missing_source_and_sink(self):
        flow = _flow(
            [_op(OperationKind.FILTER, "f"), _op(OperationKind.DERIVE, "d")],
            [("f", "d")],
        )
        codes = {i.code for i in validate_flow(flow)}
        # f has no incoming edge so it is an entry point, but not an extraction.
        assert "NON_EXTRACT_SOURCE" in codes
        assert "NON_LOAD_SINK" in codes

    def test_raise_on_error(self):
        with pytest.raises(ValidationError):
            validate_flow(ETLGraph("empty"), raise_on_error=True)

    def test_warnings_do_not_raise(self):
        flow = _flow(
            [_op(OperationKind.EXTRACT_TABLE, "a"), _op(OperationKind.DERIVE, "d")],
            [("a", "d")],
        )
        issues = validate_flow(flow, raise_on_error=True)
        assert all(i.severity is Severity.WARNING for i in issues)


class TestArityChecks:
    def test_source_with_input_is_error(self):
        flow = _flow(
            [
                _op(OperationKind.EXTRACT_TABLE, "a"),
                _op(OperationKind.EXTRACT_TABLE, "b"),
                _op(OperationKind.LOAD_TABLE, "l"),
            ],
            [("a", "b"), ("b", "l")],
        )
        codes = {i.code for i in validate_flow(flow)}
        assert "SOURCE_WITH_INPUT" in codes
        assert not is_valid(flow)

    def test_join_needs_two_inputs(self):
        flow = _flow(
            [
                _op(OperationKind.EXTRACT_TABLE, "a"),
                _op(OperationKind.JOIN, "j"),
                _op(OperationKind.LOAD_TABLE, "l"),
            ],
            [("a", "j"), ("j", "l")],
        )
        codes = {i.code for i in validate_flow(flow)}
        assert "JOIN_ARITY" in codes

    def test_router_with_single_output_warns(self):
        flow = _flow(
            [
                _op(OperationKind.EXTRACT_TABLE, "a"),
                _op(OperationKind.SPLIT, "s"),
                _op(OperationKind.LOAD_TABLE, "l"),
            ],
            [("a", "s"), ("s", "l")],
        )
        issues = [i for i in validate_flow(flow) if i.code == "ROUTER_ARITY"]
        assert issues and issues[0].severity is Severity.WARNING

    def test_sink_with_output_warns(self):
        flow = _flow(
            [
                _op(OperationKind.EXTRACT_TABLE, "a"),
                _op(OperationKind.LOAD_TABLE, "l"),
                _op(OperationKind.LOAD_TABLE, "l2"),
            ],
            [("a", "l"), ("l", "l2")],
        )
        codes = {i.code for i in validate_flow(flow)}
        assert "SINK_WITH_OUTPUT" in codes


class TestSchemaChecks:
    def test_incompatible_edge_schema_warns(self):
        flow = ETLGraph("t")
        flow.add_operation(
            Operation(OperationKind.EXTRACT_TABLE, op_id="a", output_schema=_schema())
        )
        flow.add_operation(
            Operation(OperationKind.LOAD_TABLE, op_id="l", output_schema=_schema())
        )
        required = Schema.of(Field("missing_field", DataType.STRING))
        flow.add_edge("a", "l", schema=required)
        codes = {i.code for i in validate_flow(flow)}
        assert "SCHEMA_MISMATCH" in codes

    def test_issue_string_rendering(self):
        issues = validate_flow(ETLGraph("empty"))
        assert "EMPTY_FLOW" in str(issues[0])
