"""Behavioural tests for the concrete quality measures."""

import pytest

from repro.etl.builder import FlowBuilder
from repro.etl.operations import OperationKind
from repro.etl.schema import DataType, Field, Schema
from repro.quality import data_quality, manageability, performance, reliability, cost
from repro.simulator.engine import simulate_flow

from tests.conftest import simulate


def _schema():
    return Schema.of(
        Field("id", DataType.INTEGER, nullable=False, key=True),
        Field("value", DataType.DECIMAL),
    )


class TestPerformanceMeasures:
    def test_cycle_time_matches_archive(self, linear_flow):
        archive = simulate(linear_flow)
        measure = performance.ProcessCycleTime()
        assert measure.compute(linear_flow, archive) == pytest.approx(
            archive.mean_cycle_time_ms()
        )

    def test_latency_per_tuple(self, linear_flow):
        archive = simulate(linear_flow)
        value = performance.AverageLatencyPerTuple().compute(linear_flow, archive)
        assert value == pytest.approx(archive.mean_latency_per_tuple_ms())
        assert value > 0

    def test_throughput_positive_and_consistent(self, linear_flow):
        archive = simulate(linear_flow)
        throughput = performance.Throughput().compute(linear_flow, archive)
        expected = archive.mean_rows_loaded() / (archive.mean_cycle_time_ms() / 1000.0)
        assert throughput == pytest.approx(expected)

    def test_tail_cycle_time_at_least_mean_like(self, linear_flow):
        archive = simulate(linear_flow, runs=10)
        p95 = performance.TailCycleTime().compute(linear_flow, archive)
        assert p95 >= archive.mean_cycle_time_ms() * 0.5


class TestDataQualityMeasures:
    def _flow_with_defects(self, cleanser: OperationKind | None = None):
        builder = FlowBuilder("dq")
        src = builder.extract_table(
            "src", schema=_schema(), rows=2_000, null_rate=0.2, duplicate_rate=0.1,
            error_rate=0.1, freshness_lag=120.0, update_frequency=24.0,
        )
        previous = src
        if cleanser is not None:
            previous = builder.add(cleanser, "cleanser", after=src)
        builder.load_table("load", after=previous)
        return builder.build()

    def test_null_rate_reflects_cleansing(self):
        dirty = self._flow_with_defects()
        clean = self._flow_with_defects(OperationKind.FILTER_NULLS)
        dirty_rate = data_quality.NullRate().compute(dirty, simulate(dirty))
        clean_rate = data_quality.NullRate().compute(clean, simulate(clean))
        assert dirty_rate > clean_rate
        assert clean_rate == pytest.approx(0.0, abs=1e-9)

    def test_duplicate_rate_reflects_deduplication(self):
        dirty = self._flow_with_defects()
        clean = self._flow_with_defects(OperationKind.DEDUPLICATE)
        assert data_quality.DuplicateRate().compute(dirty, simulate(dirty)) > \
            data_quality.DuplicateRate().compute(clean, simulate(clean))

    def test_error_rate_reflects_crosscheck(self):
        dirty = self._flow_with_defects()
        checked = self._flow_with_defects(OperationKind.CROSSCHECK)
        assert data_quality.ErrorRate().compute(dirty, simulate(dirty)) > \
            data_quality.ErrorRate().compute(checked, simulate(checked))

    def test_freshness_age_and_score(self):
        flow = self._flow_with_defects()
        archive = simulate(flow)
        age = data_quality.FreshnessAge().compute(flow, archive)
        score = data_quality.FreshnessScore().compute(flow, archive)
        assert age >= 120.0
        assert 0.0 < score <= 1.0

    def test_freshness_score_decreases_with_age(self):
        builder = FlowBuilder("stale")
        builder.extract_table(
            "src", schema=_schema(), rows=100, freshness_lag=10_000.0, update_frequency=24.0,
        )
        builder.load_table("load")
        stale_flow = builder.build()
        fresh_flow = self._flow_with_defects()
        stale = data_quality.FreshnessScore().compute(stale_flow, simulate(stale_flow))
        fresh = data_quality.FreshnessScore().compute(fresh_flow, simulate(fresh_flow))
        assert stale < fresh

    def test_cleansing_coverage_static_measure(self):
        dirty = self._flow_with_defects()
        clean = self._flow_with_defects(OperationKind.FILTER_NULLS)
        coverage = data_quality.CleansingCoverage()
        assert coverage.compute(dirty) == 0.0
        assert coverage.compute(clean) == 1.0

    def test_defect_rate_normalisation_bounded(self):
        measure = data_quality.ErrorRate()
        assert measure.normalize(0.0) == 1.0
        assert measure.normalize(1.0) == 0.0
        assert measure.normalize(2.0) == 0.0


class TestReliabilityMeasures:
    def _fragile_flow(self, with_checkpoint: bool):
        builder = FlowBuilder("fragile")
        src = builder.extract_table("src", schema=_schema(), rows=1_000, cost_per_tuple=0.1)
        mid = builder.filter("flt", predicate="p", selectivity=0.9, after=src)
        if with_checkpoint:
            mid = builder.add(OperationKind.CHECKPOINT, "cp", after=mid)
        derive = builder.derive("fragile_derive", cost_per_tuple=0.01, after=mid)
        derive.properties.failure_rate = 0.4
        builder.load_table("load", after=derive)
        return builder.build()

    def test_success_rate_improves_with_checkpoint(self):
        base = self._fragile_flow(False)
        protected = self._fragile_flow(True)
        base_rate = reliability.SuccessRate().compute(base, simulate(base, runs=30, seed=3))
        protected_rate = reliability.SuccessRate().compute(
            protected, simulate(protected, runs=30, seed=3)
        )
        assert protected_rate > base_rate

    def test_recovery_coverage_static(self):
        assert reliability.RecoveryCoverage().compute(self._fragile_flow(False)) == 0.0
        covered = reliability.RecoveryCoverage().compute(self._fragile_flow(True))
        assert 0.0 < covered < 1.0

    def test_flow_failure_probability(self):
        flow = self._fragile_flow(False)
        probability = reliability.FlowFailureProbability().compute(flow)
        assert probability == pytest.approx(0.4)

    def test_mean_lost_work_non_negative(self, linear_flow):
        archive = simulate(linear_flow, runs=5)
        assert reliability.MeanLostWork().compute(linear_flow, archive) >= 0.0


class TestManageabilityMeasures:
    def test_longest_path(self, linear_flow, branching_flow):
        assert manageability.LongestPathLength().compute(linear_flow) == 3.0
        assert manageability.LongestPathLength().compute(branching_flow) >= 4.0

    def test_coupling(self, linear_flow, branching_flow):
        assert manageability.Coupling().compute(linear_flow) == pytest.approx(3 / 4)
        assert manageability.Coupling().compute(branching_flow) > \
            manageability.Coupling().compute(linear_flow)

    def test_merge_elements(self, linear_flow, branching_flow):
        assert manageability.MergeElementCount().compute(linear_flow) == 0.0
        assert manageability.MergeElementCount().compute(branching_flow) >= 1.0

    def test_operation_count(self, linear_flow):
        assert manageability.OperationCount().compute(linear_flow) == float(
            linear_flow.node_count
        )


class TestCostMeasures:
    def test_monetary_cost_from_trace(self, linear_flow):
        archive = simulate(linear_flow)
        value = cost.MonetaryCostPerExecution().compute(linear_flow, archive)
        assert value == pytest.approx(archive.mean_monetary_cost())

    def test_resource_footprint_static(self, linear_flow, branching_flow):
        footprint = cost.ResourceFootprint()
        assert footprint.compute(linear_flow) > 0
        # a flow with more operations over comparable volumes costs more
        assert footprint.compute(branching_flow) > 0

    def test_resource_footprint_reflects_parallelism(self, linear_flow):
        parallel = linear_flow.copy()
        derive = next(op for op in parallel.operations() if op.kind is OperationKind.DERIVE)
        derive.config["parallelism"] = 4
        footprint = cost.ResourceFootprint()
        assert footprint.compute(parallel) < footprint.compute(linear_flow)
