"""Tests for composite measures, quality profiles and the estimator facade."""

import pytest

from repro.quality.composite import CompositeMeasure, QualityProfile, build_composites
from repro.quality.estimator import EstimationSettings, QualityEstimator
from repro.quality.framework import (
    MeasureRegistry,
    MeasureValue,
    QualityCharacteristic,
    default_registry,
)
from repro.quality.manageability import Coupling, LongestPathLength


def _value(name, characteristic, value, normalized, higher=True):
    return MeasureValue(
        measure=name,
        characteristic=characteristic,
        value=value,
        normalized=normalized,
        higher_is_better=higher,
    )


class TestCompositeMeasure:
    def test_score_is_weighted_mean_of_normalised_values(self):
        composite = CompositeMeasure(
            QualityCharacteristic.MANAGEABILITY,
            components=(LongestPathLength(), Coupling()),
        )
        values = {
            "longest_path_length": _value(
                "longest_path_length", QualityCharacteristic.MANAGEABILITY, 5, 0.8, higher=False
            ),
            "coupling": _value(
                "coupling", QualityCharacteristic.MANAGEABILITY, 1.0, 0.4, higher=False
            ),
        }
        # equal weights (1.0) -> plain mean of 0.8 and 0.4 on a 0-100 scale
        assert composite.score(values) == pytest.approx(60.0)

    def test_missing_components_are_skipped(self):
        composite = CompositeMeasure(
            QualityCharacteristic.MANAGEABILITY,
            components=(LongestPathLength(), Coupling()),
        )
        values = {
            "coupling": _value(
                "coupling", QualityCharacteristic.MANAGEABILITY, 1.0, 0.4, higher=False
            ),
        }
        assert composite.score(values) == pytest.approx(40.0)

    def test_empty_values_score_zero(self):
        composite = CompositeMeasure(QualityCharacteristic.COST, components=())
        assert composite.score({}) == 0.0

    def test_build_composites_covers_registry(self):
        registry = default_registry()
        composites = build_composites(registry)
        assert set(composites) == set(registry.characteristics())
        for characteristic, composite in composites.items():
            assert composite.component_names() == [
                m.name for m in registry.for_characteristic(characteristic)
            ]


class TestQualityProfile:
    def _profile(self, name="flow", perf=50.0, dq=60.0):
        profile = QualityProfile(flow_name=name)
        profile.scores[QualityCharacteristic.PERFORMANCE] = perf
        profile.scores[QualityCharacteristic.DATA_QUALITY] = dq
        profile.values["cycle"] = _value(
            "cycle", QualityCharacteristic.PERFORMANCE, 100.0, 0.5, higher=False
        )
        profile.values["nulls"] = _value(
            "nulls", QualityCharacteristic.DATA_QUALITY, 0.1, 0.9, higher=False
        )
        return profile

    def test_score_and_value_accessors(self):
        profile = self._profile()
        assert profile.score(QualityCharacteristic.PERFORMANCE) == 50.0
        assert profile.score(QualityCharacteristic.RELIABILITY) == 0.0
        assert profile.value("cycle").value == 100.0
        with pytest.raises(KeyError):
            profile.value("missing")

    def test_expand_drills_down_by_characteristic(self):
        profile = self._profile()
        detailed = profile.expand(QualityCharacteristic.PERFORMANCE)
        assert [v.measure for v in detailed] == ["cycle"]

    def test_as_vector_order(self):
        profile = self._profile(perf=10.0, dq=20.0)
        vector = profile.as_vector(
            [QualityCharacteristic.DATA_QUALITY, QualityCharacteristic.PERFORMANCE]
        )
        assert vector == (20.0, 10.0)

    def test_dominates(self):
        a = self._profile(perf=50.0, dq=60.0)
        b = self._profile(perf=40.0, dq=60.0)
        characteristics = [QualityCharacteristic.PERFORMANCE, QualityCharacteristic.DATA_QUALITY]
        assert a.dominates(b, characteristics)
        assert not b.dominates(a, characteristics)
        assert not a.dominates(a, characteristics)

    def test_relative_changes(self):
        baseline = self._profile()
        improved = self._profile()
        improved.values["cycle"] = _value(
            "cycle", QualityCharacteristic.PERFORMANCE, 50.0, 0.7, higher=False
        )
        changes = improved.relative_changes(baseline)
        assert changes["cycle"] == pytest.approx(0.5)
        assert changes["nulls"] == pytest.approx(0.0)

    def test_characteristic_changes(self):
        baseline = self._profile(perf=50.0)
        better = self._profile(perf=75.0)
        changes = better.characteristic_changes(baseline)
        assert changes[QualityCharacteristic.PERFORMANCE] == pytest.approx(0.5)

    def test_to_dict_round_trippable_structure(self):
        data = self._profile().to_dict()
        assert data["flow_name"] == "flow"
        assert "performance" in data["scores"]
        assert "cycle" in data["measures"]


class TestQualityEstimator:
    def test_full_evaluation_produces_scores_and_values(self, linear_flow, fast_estimator):
        profile = fast_estimator.evaluate(linear_flow)
        assert profile.flow_name == linear_flow.name
        assert profile.scores
        for characteristic, score in profile.scores.items():
            assert 0.0 <= score <= 100.0, characteristic
        # Every registered measure must have been evaluated (simulation ran).
        assert len(profile.values) == len(fast_estimator.registry)

    def test_static_only_evaluation(self, linear_flow):
        estimator = QualityEstimator(
            settings=EstimationSettings(use_simulation=False)
        )
        profile = estimator.evaluate(linear_flow)
        trace_based = [m.name for m in estimator.registry if m.requires_trace]
        for name in trace_based:
            assert name not in profile.values
        static = [m.name for m in estimator.registry if not m.requires_trace]
        for name in static:
            assert name in profile.values

    def test_estimates_are_deterministic_for_a_seed(self, linear_flow):
        a = QualityEstimator(settings=EstimationSettings(simulation_runs=2, seed=5)).evaluate(
            linear_flow
        )
        b = QualityEstimator(settings=EstimationSettings(simulation_runs=2, seed=5)).evaluate(
            linear_flow
        )
        assert a.scores == b.scores

    def test_precomputed_archive_is_reused(self, linear_flow, fast_estimator):
        archive = fast_estimator.simulate(linear_flow)
        profile = fast_estimator.evaluate(linear_flow, archive=archive)
        assert profile.value("process_cycle_time_ms").value == pytest.approx(
            archive.mean_cycle_time_ms()
        )

    def test_custom_registry(self, linear_flow):
        registry = MeasureRegistry([LongestPathLength(), Coupling()])
        estimator = QualityEstimator(registry=registry)
        profile = estimator.evaluate(linear_flow)
        assert set(profile.values) == {"longest_path_length", "coupling"}
        assert set(profile.scores) == {QualityCharacteristic.MANAGEABILITY}

    def test_evaluate_many(self, linear_flow, branching_flow, fast_estimator):
        profiles = fast_estimator.evaluate_many([linear_flow, branching_flow])
        assert [p.flow_name for p in profiles] == [linear_flow.name, branching_flow.name]
