"""Unit tests for the quality measurement framework."""

import math

import pytest

from repro.etl.graph import ETLGraph
from repro.quality.framework import (
    Measure,
    MeasureRegistry,
    MeasureValue,
    QualityCharacteristic,
    default_registry,
)


class _StaticMeasure(Measure):
    name = "static_test_measure"
    description = "a test measure"
    characteristic = QualityCharacteristic.MANAGEABILITY
    higher_is_better = False
    scale = 10.0

    def compute(self, flow, archive=None):
        return float(flow.node_count)


class _TraceMeasure(Measure):
    name = "trace_test_measure"
    characteristic = QualityCharacteristic.PERFORMANCE
    requires_trace = True
    higher_is_better = True
    scale = 100.0

    def compute(self, flow, archive=None):
        return 42.0


class TestQualityCharacteristic:
    def test_labels(self):
        assert QualityCharacteristic.DATA_QUALITY.label == "Data Quality"
        assert QualityCharacteristic.PERFORMANCE.label == "Performance"

    def test_all_six_characteristics_exist(self):
        assert len(QualityCharacteristic) == 6


class TestMeasure:
    def test_default_normalisation_lower_is_better(self):
        measure = _StaticMeasure()
        # value 0 -> perfect (1.0), large value -> towards 0
        assert measure.normalize(0.0) == pytest.approx(1.0)
        assert measure.normalize(1000.0) < 0.01
        assert measure.normalize(measure.scale) == pytest.approx(math.exp(-1))

    def test_default_normalisation_higher_is_better(self):
        measure = _TraceMeasure()
        assert measure.normalize(0.0) == pytest.approx(0.0)
        assert measure.normalize(1e9) == pytest.approx(1.0)

    def test_evaluate_produces_measure_value(self, linear_flow):
        value = _StaticMeasure().evaluate(linear_flow)
        assert isinstance(value, MeasureValue)
        assert value.value == float(linear_flow.node_count)
        assert 0.0 <= value.normalized <= 1.0
        assert value.characteristic is QualityCharacteristic.MANAGEABILITY

    def test_trace_measure_requires_archive(self, linear_flow):
        with pytest.raises(ValueError, match="requires"):
            _TraceMeasure().evaluate(linear_flow, archive=None)

    def test_non_positive_scale_rejected(self, linear_flow):
        measure = _StaticMeasure()
        measure.scale = 0.0
        with pytest.raises(ValueError):
            measure.normalize(1.0)


class TestMeasureValue:
    def _value(self, name="m", value=10.0, higher=False):
        return MeasureValue(
            measure=name,
            characteristic=QualityCharacteristic.PERFORMANCE,
            value=value,
            normalized=0.5,
            higher_is_better=higher,
        )

    def test_relative_change_lower_is_better(self):
        baseline = self._value(value=100.0)
        improved = self._value(value=50.0)
        # halving a lower-is-better measure is a +50% improvement
        assert improved.relative_change(baseline) == pytest.approx(0.5)

    def test_relative_change_higher_is_better(self):
        baseline = self._value(value=100.0, higher=True)
        improved = self._value(value=150.0, higher=True)
        assert improved.relative_change(baseline) == pytest.approx(0.5)

    def test_relative_change_degradation_is_negative(self):
        baseline = self._value(value=100.0)
        worse = self._value(value=130.0)
        assert worse.relative_change(baseline) == pytest.approx(-0.3)

    def test_relative_change_zero_baseline(self):
        baseline = self._value(value=0.0)
        same = self._value(value=0.0)
        worse = self._value(value=5.0)
        assert same.relative_change(baseline) == 0.0
        assert worse.relative_change(baseline) == -1.0

    def test_relative_change_requires_same_measure(self):
        with pytest.raises(ValueError):
            self._value(name="a").relative_change(self._value(name="b"))


class TestMeasureRegistry:
    def test_register_and_get(self):
        registry = MeasureRegistry([_StaticMeasure()])
        assert "static_test_measure" in registry
        assert registry.get("static_test_measure").name == "static_test_measure"
        assert len(registry) == 1

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            MeasureRegistry().get("nope")

    def test_unnamed_measure_rejected(self):
        bad = _StaticMeasure()
        bad.name = ""
        with pytest.raises(ValueError):
            MeasureRegistry().register(bad)

    def test_unregister(self):
        registry = MeasureRegistry([_StaticMeasure()])
        registry.unregister("static_test_measure")
        assert len(registry) == 0

    def test_for_characteristic(self):
        registry = MeasureRegistry([_StaticMeasure(), _TraceMeasure()])
        perf = registry.for_characteristic(QualityCharacteristic.PERFORMANCE)
        assert [m.name for m in perf] == ["trace_test_measure"]

    def test_characteristics_listing(self):
        registry = MeasureRegistry([_StaticMeasure(), _TraceMeasure()])
        assert set(registry.characteristics()) == {
            QualityCharacteristic.MANAGEABILITY,
            QualityCharacteristic.PERFORMANCE,
        }


class TestDefaultRegistry:
    def test_contains_fig1_measures(self):
        registry = default_registry()
        # Fig. 1 names the cycle time, latency, freshness and the three
        # manageability measures; all must be present.
        for name in (
            "process_cycle_time_ms",
            "avg_latency_per_tuple_ms",
            "freshness_age_minutes",
            "freshness_score",
            "longest_path_length",
            "coupling",
            "merge_element_count",
        ):
            assert name in registry

    def test_covers_five_characteristics(self):
        registry = default_registry()
        covered = set(registry.characteristics())
        assert QualityCharacteristic.PERFORMANCE in covered
        assert QualityCharacteristic.DATA_QUALITY in covered
        assert QualityCharacteristic.RELIABILITY in covered
        assert QualityCharacteristic.MANAGEABILITY in covered
        assert QualityCharacteristic.COST in covered

    def test_every_measure_has_description_and_unique_name(self):
        registry = default_registry()
        names = registry.names()
        assert len(names) == len(set(names))
        for measure in registry:
            assert measure.description
