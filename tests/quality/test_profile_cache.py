"""Tests for the memoized estimation layer: ProfileCache and fingerprints."""

import pickle

import pytest

from repro.quality.composite import QualityProfile
from repro.quality.estimator import (
    CacheStats,
    EstimationSettings,
    ProfileCache,
    QualityEstimator,
    flow_fingerprint,
)


class TestFlowFingerprint:
    def test_identical_copies_share_a_fingerprint(self, linear_flow):
        assert flow_fingerprint(linear_flow) == flow_fingerprint(linear_flow.copy())

    def test_name_and_lineage_are_ignored(self, linear_flow):
        renamed = linear_flow.copy(name="something_else")
        renamed.record_pattern("AddCheckpoint @ der")
        assert flow_fingerprint(renamed) == flow_fingerprint(linear_flow)

    def test_annotations_change_the_fingerprint(self, linear_flow):
        annotated = linear_flow.copy()
        annotated.annotations["encryption"] = True
        assert flow_fingerprint(annotated) != flow_fingerprint(linear_flow)

    def test_operation_properties_change_the_fingerprint(self, linear_flow):
        tweaked = linear_flow.copy()
        tweaked.operation("der").properties.cost_per_tuple = 123.0
        assert flow_fingerprint(tweaked) != flow_fingerprint(linear_flow)

    def test_structure_changes_the_fingerprint(self, linear_flow, branching_flow):
        assert flow_fingerprint(linear_flow) != flow_fingerprint(branching_flow)


class TestProfileCache:
    def _profile(self, name="p"):
        return QualityProfile(flow_name=name)

    def test_get_put_and_stats(self):
        cache = ProfileCache()
        assert cache.get(("k",)) is None
        cache.put(("k",), self._profile())
        assert cache.get(("k",)).flow_name == "p"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.lookups == 2
        assert cache.stats.hit_rate == 0.5
        assert len(cache) == 1
        assert ("k",) in cache

    def test_lru_eviction(self):
        cache = ProfileCache(max_entries=2)
        cache.put(("a",), self._profile("a"))
        cache.put(("b",), self._profile("b"))
        assert cache.get(("a",)) is not None  # refresh "a"
        cache.put(("c",), self._profile("c"))
        assert ("b",) not in cache
        assert ("a",) in cache and ("c",) in cache
        assert cache.stats.evictions == 1

    def test_clear_resets_entries_and_stats(self):
        cache = ProfileCache()
        cache.put(("a",), self._profile())
        cache.get(("a",))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.lookups == 0

    def test_invalid_max_entries(self):
        with pytest.raises(ValueError):
            ProfileCache(max_entries=0)

    def test_pickles_as_an_entry_less_cache(self):
        cache = ProfileCache(max_entries=8)
        cache.put(("a",), self._profile())
        clone = pickle.loads(pickle.dumps(cache))
        assert len(clone) == 0
        assert clone.max_entries == 8
        # the clone is fully functional (fresh lock, fresh entries)
        clone.put(("b",), self._profile("b"))
        assert ("b",) in clone

    def test_pickling_round_trips_the_stats(self):
        """Hit/miss counters survive a process-pool transfer.

        Entries are deliberately dropped on pickling (workers get a blank
        memo), but the accounting must not be silently zeroed: a cache
        that crossed a process boundary still reports its history.
        """
        cache = ProfileCache()
        cache.put(("a",), self._profile())
        cache.get(("a",))  # hit
        cache.get(("b",))  # miss
        clone = pickle.loads(pickle.dumps(cache))
        assert len(clone) == 0  # entries still dropped by design
        assert clone.stats.hits == 1
        assert clone.stats.misses == 1
        assert clone.stats.lookups == 2
        # a second hop keeps accumulating on top of the restored counters
        clone.get(("c",))
        hop = pickle.loads(pickle.dumps(clone))
        assert hop.stats.misses == 2

    def test_flush_is_a_noop_and_tier_stats_report_memory(self):
        cache = ProfileCache()
        cache.put(("a",), self._profile())
        cache.flush()
        assert ("a",) in cache
        assert set(cache.tier_stats()) == {"memory"}

    def test_cache_stats_as_dict(self):
        stats = CacheStats(hits=3, misses=1)
        snapshot = stats.as_dict()
        assert snapshot["hits"] == 3
        assert snapshot["lookups"] == 4
        assert snapshot["hit_rate"] == 0.75


class TestCachedEstimator:
    def test_repeat_evaluation_is_memoized(self, linear_flow):
        cache = ProfileCache()
        estimator = QualityEstimator(
            settings=EstimationSettings(simulation_runs=1, seed=3), cache=cache
        )
        first = estimator.evaluate(linear_flow)
        second = estimator.evaluate(linear_flow.copy())
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert first.scores == second.scores
        assert first.values == second.values

    def test_cache_hit_relabels_the_profile(self, linear_flow):
        cache = ProfileCache()
        estimator = QualityEstimator(
            settings=EstimationSettings(simulation_runs=1, seed=3), cache=cache
        )
        estimator.evaluate(linear_flow)
        renamed = linear_flow.copy(name="rebranded")
        profile = estimator.evaluate(renamed)
        assert profile.flow_name == "rebranded"

    def test_cached_profiles_are_copies(self, linear_flow):
        cache = ProfileCache()
        estimator = QualityEstimator(
            settings=EstimationSettings(simulation_runs=1, seed=3), cache=cache
        )
        first = estimator.evaluate(linear_flow)
        first.scores.clear()  # a caller mutating its copy...
        second = estimator.evaluate(linear_flow.copy())
        assert second.scores  # ...does not corrupt the memo

    def test_settings_partition_the_cache(self, linear_flow):
        cache = ProfileCache()
        simulated = QualityEstimator(
            settings=EstimationSettings(simulation_runs=1, seed=3), cache=cache
        )
        static = QualityEstimator(
            settings=EstimationSettings(simulation_runs=1, seed=3, use_simulation=False),
            cache=cache,
        )
        full = simulated.evaluate(linear_flow)
        screened = static.evaluate(linear_flow.copy())
        assert cache.stats.misses == 2  # distinct entries, no cross-talk
        assert "process_cycle_time_ms" in full.values
        assert "process_cycle_time_ms" not in screened.values

    def test_registries_partition_the_cache(self, linear_flow):
        from repro.quality.framework import MeasureRegistry, default_registry

        cache = ProfileCache()
        settings = EstimationSettings(simulation_runs=1, seed=3)
        full = QualityEstimator(settings=settings, cache=cache)
        restricted_registry = MeasureRegistry(
            m for m in default_registry() if not m.requires_trace
        )
        restricted = QualityEstimator(
            registry=restricted_registry, settings=settings, cache=cache
        )
        full_profile = full.evaluate(linear_flow)
        restricted_profile = restricted.evaluate(linear_flow.copy())
        assert cache.stats.misses == 2  # distinct entries per registry
        assert "process_cycle_time_ms" in full_profile.values
        assert "process_cycle_time_ms" not in restricted_profile.values

    def test_in_place_mutation_invalidates_the_memo(self, linear_flow):
        cache = ProfileCache()
        estimator = QualityEstimator(
            settings=EstimationSettings(simulation_runs=1, seed=3), cache=cache
        )
        before = estimator.evaluate(linear_flow)
        linear_flow.operation("der").properties.cost_per_tuple = 50.0
        after = estimator.evaluate(linear_flow)
        assert cache.stats.misses == 2  # the mutation produced a fresh key
        assert (
            after.values["process_cycle_time_ms"].value
            > before.values["process_cycle_time_ms"].value
        )

    def test_explicit_archive_bypasses_the_cache(self, linear_flow):
        cache = ProfileCache()
        estimator = QualityEstimator(
            settings=EstimationSettings(simulation_runs=1, seed=3), cache=cache
        )
        archive = estimator.simulate(linear_flow)
        estimator.evaluate(linear_flow, archive)
        assert cache.stats.lookups == 0
        assert len(cache) == 0
