"""The overhauled wire path: pooling, compression, auth, recovery.

Covers the transport contracts of :mod:`repro.wire` end-to-end against
real servers: one TCP connection per thread across a whole campaign, a
stale keep-alive socket surviving a server restart with exactly one
reconnect, transparent compression with byte-identical profiles, token
authentication failing loudly (never silent fallback), degraded clients
winning traffic back through recovery probes, and the observability
surfaces (``/stats`` polls, ``len()``) staying best-effort.
"""

from __future__ import annotations

import gzip
import json
import time
import urllib.error
import urllib.request

import pytest

from repro.cache import ProfileCache
from repro.cache.http import CacheAuthError, HTTPProfileCache
from repro.quality.composite import QualityProfile
from repro.service import CacheServer, RedesignClient, RedesignServer
from repro.service.client import RedesignServiceError
from repro.wire import BodyTooLarge, decode_body, encode_body


def _profile(name: str = "p") -> QualityProfile:
    return QualityProfile(flow_name=name)


def _big_profile(name: str = "big") -> QualityProfile:
    """A profile whose JSON document clears the compression threshold."""
    return QualityProfile(flow_name=name + "x" * 4096)


@pytest.fixture()
def server():
    with CacheServer(ProfileCache()) as srv:
        yield srv


class TestConnectionPooling:
    def test_one_connection_serves_a_whole_campaign(self, server):
        client = HTTPProfileCache(server.url, timeout=5.0)
        for index in range(10):
            client.put((f"k{index}",), _profile())
        client.flush()
        assert all(client.get((f"k{index}",)) for index in range(10))
        stats = client.wire_stats()
        assert stats["connections_opened"] == 1
        assert stats["reconnects"] == 0
        assert stats["requests"] >= 11  # one flush + ten lookups

    def test_pool_false_reproduces_per_request_connections(self, server):
        client = HTTPProfileCache(server.url, timeout=5.0, pool=False)
        for _ in range(4):
            assert client.get(("absent",)) is None
        assert client.wire_stats()["connections_opened"] == 4
        assert not client.degraded

    def test_stale_keepalive_socket_reconnects_exactly_once(self, server):
        """A server restart costs one transparent reconnect, not a plan."""
        client = HTTPProfileCache(server.url, timeout=5.0, recovery_interval=None)
        client.put(("warm",), _profile("kept"))
        client.flush()
        port = server.port
        server.stop()
        restarted = CacheServer(ProfileCache(), port=port).start()
        try:
            # The pooled socket is stale; the request must be retried on
            # a fresh connection -- once -- and succeed, without the
            # client ever touching its fallback tier.
            assert client.get(("warm",)) is None  # fresh (empty) store
            stats = client.wire_stats()
            assert stats["reconnects"] == 1
            assert stats["connections_opened"] == 2
            assert not client.degraded
        finally:
            restarted.stop()


class TestCompression:
    def test_roundtrip_is_byte_identical_and_actually_compressed(self, server):
        writer = HTTPProfileCache(server.url, timeout=5.0)
        profile = _big_profile()
        writer.put(("big",), profile)
        writer.flush()
        assert writer.wire_stats()["compressed_requests"] >= 1

        for compression in (True, False):
            reader = HTTPProfileCache(server.url, timeout=5.0, compression=compression)
            fetched = reader.get(("big",))
            assert fetched == profile  # exact document, either wire format
            expected = 1 if compression else 0
            assert reader.wire_stats()["compressed_responses"] == expected
            assert not reader.degraded

    def test_small_bodies_travel_uncompressed(self, server):
        client = HTTPProfileCache(server.url, timeout=5.0)
        assert client.get(("tiny",)) is None
        assert client.wire_stats()["compressed_requests"] == 0

    def test_encode_decode_inverse_and_deterministic(self):
        payload = {"profiles": ["x" * 4096]}
        body, coding = encode_body(payload, compress=True)
        again, _ = encode_body(payload, compress=True)
        assert coding == "gzip" and body == again  # mtime=0: reproducible
        assert json.loads(decode_body(body, coding).decode()) == payload

    def test_decompression_bomb_is_rejected_with_413(self, server):
        bomb = gzip.compress(b"0" * (64 * 1024 * 1024), mtime=0)
        with pytest.raises(BodyTooLarge):
            decode_body(bomb, "gzip", max_bytes=1024)
        request = urllib.request.Request(
            server.url + "/get_many",
            data=bomb,
            headers={"Content-Type": "application/json", "Content-Encoding": "gzip"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5.0)
        assert excinfo.value.code == 413

    def test_corrupt_compressed_body_is_a_400(self, server):
        request = urllib.request.Request(
            server.url + "/get_many",
            data=b"\x1f\x8bnot really gzip",
            headers={"Content-Type": "application/json", "Content-Encoding": "gzip"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5.0)
        assert excinfo.value.code == 400


class TestAuthentication:
    @pytest.fixture()
    def locked_server(self):
        with CacheServer(ProfileCache(), auth_token="s3cret") as srv:
            yield srv

    def test_matching_token_serves_normally(self, locked_server):
        client = HTTPProfileCache(locked_server.url, timeout=5.0, auth_token="s3cret")
        client.put(("k",), _profile("authed"))
        client.flush()
        assert client.get(("k",)).flow_name == "authed"
        assert not client.degraded

    @pytest.mark.parametrize("token", [None, "wrong"])
    def test_bad_token_raises_instead_of_silent_fallback(self, locked_server, token):
        client = HTTPProfileCache(locked_server.url, timeout=5.0, auth_token=token)
        with pytest.raises(CacheAuthError):
            client.get(("k",))
        # The one failure an operator must see: NOT degraded-and-quiet.
        assert not client.degraded

    def test_health_stays_open_for_unauthenticated_probes(self, locked_server):
        with urllib.request.urlopen(locked_server.url + "/health", timeout=5.0) as resp:
            assert json.loads(resp.read().decode())["status"] == "ok"

    def test_redesign_client_surfaces_401(self):
        with RedesignServer(auth_token="s3cret") as srv:
            bad = RedesignClient(srv.url, timeout=5.0)
            with pytest.raises(RedesignServiceError) as excinfo:
                bad.status("any")
            assert excinfo.value.status == 401
            good = RedesignClient(srv.url, timeout=5.0, auth_token="s3cret")
            with pytest.raises(RedesignServiceError) as excinfo:
                good.status("absent")  # authenticated, but no such job
            assert excinfo.value.status == 404

    def test_empty_token_is_rejected_at_construction(self):
        with pytest.raises(ValueError):
            CacheServer(ProfileCache(), auth_token="")


class TestRecoveryProbes:
    def test_degraded_client_reattaches_and_republishes(self, caplog):
        import logging

        server = CacheServer(ProfileCache()).start()
        port = server.port
        client = HTTPProfileCache(server.url, timeout=2.0, recovery_interval=0.05)
        client.put(("before",), _profile("early"))
        server.stop()
        with caplog.at_level(logging.WARNING, logger="repro.cache.http"):
            assert client.get(("before",)).flow_name == "early"  # buffered
            assert client.get(("missing",)) is None  # degrades here
            assert client.degraded
            client.put(("during",), _profile("offline"))  # fallback write
            restarted = CacheServer(ProfileCache(), port=port).start()
            try:
                # Re-attach flips `degraded` before the republish flush
                # lands; wait for the entries, not just the flip.
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline and (
                    client.degraded or len(restarted.backend) < 2
                ):
                    time.sleep(0.02)
                assert not client.degraded, "recovery probe never re-attached"
                assert client.recoveries == 1
                # Everything written while offline (and the pre-outage
                # buffer) was republished to the restarted server.
                assert len(restarted.backend) == 2
                assert client.get(("during",)).flow_name == "offline"
            finally:
                restarted.stop()
                client.close()
        assert any("re-attached" in record.message for record in caplog.records)

    def test_recovery_interval_none_keeps_pr5_terminal_degradation(self):
        server = CacheServer(ProfileCache()).start()
        client = HTTPProfileCache(server.url, timeout=2.0, recovery_interval=None)
        server.stop()
        assert client.get(("k",)) is None
        assert client.degraded
        assert client._probe_timer is None  # nothing scheduled, ever

    def test_close_cancels_the_probe_timer(self):
        server = CacheServer(ProfileCache()).start()
        client = HTTPProfileCache(server.url, timeout=2.0, recovery_interval=30.0)
        server.stop()
        assert client.get(("k",)) is None and client.degraded
        assert client._probe_timer is not None
        client.close()
        assert client._probe_timer is None


class TestBestEffortObservability:
    def test_failed_stats_poll_never_degrades_the_hot_path(self, server, monkeypatch):
        client = HTTPProfileCache(server.url, timeout=5.0)
        client.put(("k",), _profile("served"))
        client.flush()

        real = client._client.request_json

        def flaky(method, path, payload=None):
            if path == "/stats":
                raise OSError("monitoring endpoint down")
            return real(method, path, payload)

        monkeypatch.setattr(client._client, "request_json", flaky)
        tiers = client.tier_stats()
        assert set(tiers) == {"http", "fallback"}  # server view omitted
        assert len(client) == 0  # local view: buffer empty, fallback empty
        assert not client.degraded
        # The next lookup still goes to the server -- and hits.
        assert client.get(("k",)).flow_name == "served"
        assert server.stats.hits == 1

    def test_stats_include_wire_accounting(self, server):
        client = HTTPProfileCache(server.url, timeout=5.0)
        client.get(("k",))
        stats = client.wire_stats()
        assert {
            "requests",
            "connections_opened",
            "reconnects",
            "compressed_requests",
            "compressed_responses",
            "recoveries",
        } <= set(stats)


class TestPendingBuffer:
    def test_buffer_auto_publishes_at_max_pending(self, server):
        client = HTTPProfileCache(server.url, timeout=5.0, max_pending=3)
        client.put(("a",), _profile())
        client.put(("b",), _profile())
        assert len(server.backend) == 0  # still buffered
        client.put(("c",), _profile())  # third entry crosses the bound
        assert len(server.backend) == 3
        assert client._pending == {}

    def test_max_pending_must_be_positive(self):
        with pytest.raises(ValueError):
            HTTPProfileCache("http://127.0.0.1:1", max_pending=0)


class TestWildcardBinding:
    def test_url_is_connectable_when_bound_to_every_interface(self):
        with CacheServer(ProfileCache(), host="0.0.0.0") as srv:
            assert srv.host == "0.0.0.0"  # the binding is preserved
            assert "0.0.0.0" not in srv.url  # ... but never advertised
            client = HTTPProfileCache(srv.url, timeout=5.0)
            assert client.get(("k",)) is None
            assert not client.degraded


class TestWaitBackoff:
    def test_poll_interval_doubles_up_to_the_cap(self, monkeypatch):
        client = RedesignClient("http://127.0.0.1:1", timeout=1.0, poll_max=0.08)
        statuses = iter(["queued"] * 5 + ["done"])
        monkeypatch.setattr(
            client, "status", lambda job_id: {"status": next(statuses)}
        )
        sleeps: list[float] = []
        monkeypatch.setattr(time, "sleep", lambda s: sleeps.append(s))
        result = client.wait("job", timeout=60.0, poll=0.01)
        assert result["status"] == "done"
        assert sleeps == [0.01, 0.02, 0.04, 0.08, 0.08]

    def test_deadline_still_raises_timeout(self, monkeypatch):
        client = RedesignClient("http://127.0.0.1:1", timeout=1.0)
        monkeypatch.setattr(client, "status", lambda job_id: {"status": "queued"})
        with pytest.raises(TimeoutError):
            client.wait("job", timeout=0.0, poll=0.01)

    def test_nonpositive_poll_is_rejected(self):
        client = RedesignClient("http://127.0.0.1:1", timeout=1.0)
        with pytest.raises(ValueError):
            client.wait("job", poll=0.0)
