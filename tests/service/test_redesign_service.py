"""The redesign service: job lifecycle, wire results, concurrency.

The acceptance bar: results fetched over the wire are equivalent to an
in-process plan, >= 4 concurrent submissions all complete correctly on
a bounded pool with one shared cache, bad requests get clean JSON
errors, and progress is observable while a job runs.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.cache import ProfileCache
from repro.core import Planner
from repro.service import (
    RedesignClient,
    RedesignServer,
    RedesignServiceError,
    configuration_from_request,
    result_from_dict,
    result_to_dict,
)
from repro.service.common import ServiceError


#: The knobs of the shared fast test configuration, as a wire document.
_WIRE_CONFIG = dict(
    pattern_budget=1,
    max_points_per_pattern=2,
    simulation_runs=1,
    max_alternatives=200,
    seed=7,
)


@pytest.fixture()
def server():
    with RedesignServer(cache=ProfileCache(), workers=2) as srv:
        yield srv


@pytest.fixture()
def client(server):
    return RedesignClient(server.url, timeout=10.0)


class TestResultCodec:
    def test_wire_result_round_trips_the_planning_result(self, linear_flow, make_config):
        reference = Planner(configuration=make_config()).plan(linear_flow)
        decoded = result_from_dict(json.loads(json.dumps(result_to_dict(reference))))
        assert decoded.fingerprint() == reference.fingerprint()
        assert [a.label for a in decoded.alternatives] == [
            a.label for a in reference.alternatives
        ]
        assert decoded.characteristics == reference.characteristics
        assert decoded.discarded_by_constraints == reference.discarded_by_constraints


class TestJobLifecycle:
    def test_submit_wait_result_matches_in_process_plan(self, client, linear_flow, make_config):
        reference = Planner(configuration=make_config()).plan(linear_flow)
        job_id = client.submit(linear_flow, _WIRE_CONFIG)
        status = client.wait(job_id, timeout=60.0)
        assert status["status"] == "done"
        # no constraints configured, so every evaluated candidate was kept
        assert status["evaluated"] == len(reference.alternatives)
        assert status["alternatives"] == len(reference.alternatives)
        assert "generation" in status and status["generation"]["yielded"] > 0
        assert "cache" in status and status["cache"]["lookups"] > 0
        result = client.result(job_id)
        assert result.fingerprint() == reference.fingerprint()

    def test_one_liner_plan(self, client, linear_flow, make_config):
        reference = Planner(configuration=make_config()).plan(linear_flow)
        result = client.plan(linear_flow, _WIRE_CONFIG, timeout=60.0)
        assert result.fingerprint() == reference.fingerprint()

    def test_result_before_done_is_409_and_unknown_is_404(self, client, server, linear_flow):
        with pytest.raises(RedesignServiceError) as excinfo:
            client.result_raw("plan-9999")
        assert excinfo.value.status == 404
        # a queued/running job refuses its result cleanly
        job_id = client.submit(linear_flow, _WIRE_CONFIG)
        try:
            client.result_raw(job_id)
        except RedesignServiceError as exc:
            assert exc.status == 409
        client.wait(job_id, timeout=60.0)

    def test_plans_listing_and_health(self, client, server, linear_flow):
        job_id = client.submit(linear_flow, _WIRE_CONFIG)
        client.wait(job_id, timeout=60.0)
        health = client.health()
        assert health["status"] == "ok" and health["workers"] == 2
        with urllib.request.urlopen(server.url + "/plans", timeout=5.0) as response:
            listing = json.loads(response.read().decode("utf-8"))
        assert any(job["id"] == job_id for job in listing["plans"])

    def test_invalid_flow_is_rejected_at_submit(self, client, server):
        """A structurally broken flow never reaches the worker pool."""
        from repro.etl.builder import FlowBuilder

        builder = FlowBuilder("empty")  # no operations at all: a hard error
        with pytest.raises(RedesignServiceError) as excinfo:
            client.submit(builder.build(validate=False), _WIRE_CONFIG)
        assert excinfo.value.status == 400
        assert "malformed flow" in excinfo.value.message

    def test_runtime_failure_fails_the_job_not_the_server(self, client, server, linear_flow):
        """An error inside the planning run surfaces as a failed job."""
        job_id = client.submit(
            linear_flow, dict(_WIRE_CONFIG, policy="no-such-policy")
        )
        status = client.wait(job_id, timeout=60.0)
        assert status["status"] == "failed"
        assert "no-such-policy" in status["error"]
        with pytest.raises(RedesignServiceError) as excinfo:
            client.result_raw(job_id)
        assert excinfo.value.status == 409
        assert client.health()["status"] == "ok"  # the worker survived


class TestJobRetention:
    def test_finished_jobs_are_compacted_and_evicted_beyond_the_cap(self, linear_flow):
        with RedesignServer(
            cache=ProfileCache(), workers=1, max_retained_jobs=2
        ) as server:
            client = RedesignClient(server.url, timeout=10.0)
            job_ids = []
            for _ in range(3):
                job_id = client.submit(linear_flow, _WIRE_CONFIG)
                client.wait(job_id, timeout=60.0)
                job_ids.append(job_id)
            # a finished job drops its planning graph...
            for job in server.jobs_snapshot():
                assert job.planner is None
                assert job.session is None
                assert job.result is None
            # ...but its status payload still carries the captured stats
            status = client.status(job_ids[-1])
            assert status["alternatives"] > 0 and status["skyline_size"] > 0
            assert "generation" in status and "cache" in status
            result = client.result(job_ids[-1])
            assert result.alternatives
            # the oldest finished job was evicted at the third submission
            assert len(server.jobs) == 2
            with pytest.raises(RedesignServiceError) as excinfo:
                client.status(job_ids[0])
            assert excinfo.value.status == 404

    def test_delete_frees_a_finished_job(self, client, server, linear_flow):
        job_id = client.submit(linear_flow, _WIRE_CONFIG)
        client.wait(job_id, timeout=60.0)
        assert client.delete(job_id)["deleted"] is True
        assert job_id not in server.jobs
        for call in (client.status, client.delete):
            with pytest.raises(RedesignServiceError) as excinfo:
                call(job_id)
            assert excinfo.value.status == 404

    def test_rejects_nonpositive_retention_cap(self):
        with pytest.raises(ValueError, match="max_retained_jobs"):
            RedesignServer(max_retained_jobs=0)

    def test_broken_backend_cannot_strand_a_job_in_running(self, linear_flow):
        """A cache backend raising even in its stats calls still yields a
        terminal *failed* job (never a forever-``running`` one) and a
        status endpoint that answers instead of 500ing."""
        from repro.cache import CacheStats

        class ExplodingBackend:
            batch_writes = False
            stats = CacheStats()

            def get(self, key):
                raise RuntimeError("backend down")

            def get_many(self, keys):
                raise RuntimeError("backend down")

            def put(self, key, profile):
                raise RuntimeError("backend down")

            def tier_stats(self):
                raise RuntimeError("backend down")

            def flush(self):
                pass

            def clear(self):
                pass

            def __len__(self):
                return 0

            def __contains__(self, key):
                return False

        with RedesignServer(cache=ExplodingBackend(), workers=1) as server:
            client = RedesignClient(server.url, timeout=10.0)
            job_id = client.submit(linear_flow, _WIRE_CONFIG)
            status = client.wait(job_id, timeout=60.0)
            assert status["status"] == "failed"
            assert "backend down" in status["error"]
            assert client.delete(job_id)["deleted"] is True  # reclaimable

    def test_delete_with_a_body_does_not_desync_keepalive(self, server):
        """The DELETE body is drained; the next request parses cleanly."""
        import http.client

        connection = http.client.HTTPConnection(server.host, server.port, timeout=5.0)
        try:
            connection.request(
                "DELETE",
                "/plans/nope",
                body=json.dumps({"reason": "cleanup"}),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 404
            response.read()
            connection.request("GET", "/health")
            response = connection.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["status"] == "ok"
        finally:
            connection.close()


class TestConcurrentSubmissions:
    def test_four_concurrent_posts_on_a_bounded_pool(self, linear_flow, branching_flow):
        with RedesignServer(cache=ProfileCache(), workers=2) as server:
            client = RedesignClient(server.url, timeout=10.0)
            flows = [linear_flow, branching_flow, linear_flow, branching_flow]
            job_ids: list = [None] * len(flows)

            def submit(index: int) -> None:
                job_ids[index] = client.submit(flows[index], _WIRE_CONFIG)

            threads = [
                threading.Thread(target=submit, args=(i,)) for i in range(len(flows))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len(set(job_ids)) == 4, "every submission got its own job id"
            statuses = [client.wait(job_id, timeout=120.0) for job_id in job_ids]
            assert all(s["status"] == "done" for s in statuses)
            # identical flows produced identical results through the pool
            first = client.result(job_ids[0])
            third = client.result(job_ids[2])
            assert first.fingerprint() == third.fingerprint()
            # ...and the shared cache saw cross-job hits (flow 3 == flow 1)
            assert server.cache.stats.hits > 0


class TestConfigurationFromRequest:
    def test_accepts_the_documented_surface(self):
        config = configuration_from_request(
            {
                "pattern_budget": 2,
                "policy": "heuristic",
                "pattern_names": ["recovery_point"],
                "goal_priorities": {"performance": 2.0, "reliability": 1.0},
                "skyline_characteristics": ["performance", "reliability"],
                "constraints": [{"target": "performance", "min_value": 10.0}],
            }
        )
        assert config.pattern_budget == 2
        assert config.pattern_names == ("recovery_point",)
        assert len(config.constraints) == 1

    def test_rejects_reserved_unknown_and_invalid(self):
        with pytest.raises(ServiceError, match="owned by the service"):
            configuration_from_request({"cache_tier": "disk"})
        with pytest.raises(ServiceError, match="unknown configuration field"):
            configuration_from_request({"not_a_knob": 1})
        with pytest.raises(ServiceError, match="invalid configuration"):
            configuration_from_request({"pattern_budget": 0})
        with pytest.raises(ServiceError, match="malformed goal_priorities"):
            configuration_from_request({"goal_priorities": {"nope": "x"}})
        assert configuration_from_request(None).pattern_budget == 2  # defaults

    def test_http_level_rejections(self, server, linear_flow):
        def post(payload: dict) -> int:
            request = urllib.request.Request(
                server.url + "/plans",
                data=json.dumps(payload).encode("utf-8"),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            try:
                urllib.request.urlopen(request, timeout=5.0)
                return 200
            except urllib.error.HTTPError as exc:
                exc.read()
                return exc.code

        import urllib.error

        assert post({}) == 400  # no flow
        assert post({"flow": "not-a-document"}) == 400
        assert post({"flow": {"bogus": True}}) == 400  # malformed flow doc
        assert (
            post({"flow": linear_flow.to_dict(), "configuration": {"cache_dir": "/x"}})
            == 400
        )
