"""The JSON wire codecs: exact round-trips and clean request rejection.

The service layer's correctness rests on two codec properties: profiles
survive JSON *exactly* (so the network tier is byte-identical to the
local tiers) and cache keys survive the tuple->array->tuple trip
``repr``-identically (so digests computed on either side of the wire
agree).  The HTTP plumbing must reject malformed and oversized bodies
with clean JSON errors, never tracebacks.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.cache import ProfileCache, key_digest
from repro.core import Planner
from repro.io.jsonflow import (
    cache_key_from_jsonable,
    profile_from_dict,
    profile_to_dict,
)
from repro.service import CacheServer
from repro.workloads import purchases_flow


@pytest.fixture(scope="module")
def evaluated_profile():
    flow = purchases_flow(rows_per_source=500)
    planner = Planner()
    return planner.evaluate_flow(flow), planner.estimator.cache_key(flow)


class TestProfileCodec:
    def test_profile_round_trip_is_exact(self, evaluated_profile):
        profile, _ = evaluated_profile
        wire = json.loads(json.dumps(profile_to_dict(profile)))
        back = profile_from_dict(wire)
        assert back.flow_name == profile.flow_name
        assert back.scores == profile.scores  # float-exact
        assert set(back.values) == set(profile.values)
        for name, value in profile.values.items():
            assert back.values[name] == value  # dataclass equality, all fields

    def test_profile_round_trip_survives_empty_profile(self):
        from repro.quality.composite import QualityProfile

        empty = QualityProfile(flow_name="nothing")
        assert profile_from_dict(profile_to_dict(empty)).flow_name == "nothing"


class TestKeyCodec:
    def test_key_round_trip_is_repr_identical(self, evaluated_profile):
        _, key = evaluated_profile
        back = cache_key_from_jsonable(json.loads(json.dumps(key)))
        assert back == key
        assert repr(back) == repr(key)  # the property file-name digests rely on
        assert key_digest(back) == key_digest(key)

    def test_scalars_and_nesting(self):
        key = (1, 2.5, None, True, "s", ("nested", ("deeper", 0)))
        back = cache_key_from_jsonable(json.loads(json.dumps(key)))
        assert back == key and isinstance(back[5], tuple)


class TestRequestHygiene:
    @pytest.fixture()
    def server(self):
        with CacheServer(ProfileCache(), max_request_bytes=4096) as server:
            yield server

    def _post(self, url, body: bytes, content_type="application/json"):
        request = urllib.request.Request(
            url, data=body, headers={"Content-Type": content_type}, method="POST"
        )
        return urllib.request.urlopen(request, timeout=5.0)

    def test_malformed_json_is_a_clean_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(server.url + "/get_many", b"{not json")
        assert excinfo.value.code == 400
        payload = json.loads(excinfo.value.read().decode("utf-8"))
        assert "not valid JSON" in payload["error"]

    def test_oversized_body_is_a_413_with_json_error(self, server):
        huge = json.dumps({"digests": ["0" * 64] * 1000}).encode()
        assert len(huge) > 4096
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(server.url + "/get_many", huge)
        assert excinfo.value.code == 413
        payload = json.loads(excinfo.value.read().decode("utf-8"))
        assert "exceeds" in payload["error"]

    def test_unknown_endpoint_is_a_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(server.url + "/no-such-endpoint", b"{}")
        assert excinfo.value.code == 404

    def test_wrong_shapes_are_400(self, server):
        for path, body in [
            ("/get_many", {"digests": "not-a-list"}),
            ("/get_many", {"digests": ["too-short"]}),
            ("/put", {"entries": [{"key": [1]}]}),  # missing profile
            ("/get", {"digest": 7}),
        ]:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._post(server.url + path, json.dumps(body).encode())
            assert excinfo.value.code == 400, path
            assert "error" in json.loads(excinfo.value.read().decode("utf-8"))

    def test_oversized_reject_does_not_corrupt_a_keepalive_connection(self, server):
        """The unread body must not be parsed as the next request."""
        import http.client

        connection = http.client.HTTPConnection(server.host, server.port, timeout=5.0)
        try:
            huge = json.dumps({"digests": ["0" * 64] * 1000}).encode()
            connection.request(
                "POST", "/get_many", body=huge, headers={"Content-Type": "application/json"}
            )
            response = connection.getresponse()
            assert response.status == 413
            assert response.getheader("Connection") == "close"
            response.read()
            # the server closed the connection instead of mis-parsing the
            # unread body; a fresh request on a new connection works fine
            connection.close()
            connection = http.client.HTTPConnection(server.host, server.port, timeout=5.0)
            connection.request("GET", "/health")
            assert connection.getresponse().status == 200
        finally:
            connection.close()

    def test_traversal_shaped_digest_is_rejected_and_touches_no_files(self, tmp_path):
        """A 64-char "digest" with path components must never reach the disk.

        Before validation, ``../``-shaped digests flowed into
        ``cache_dir / f"{digest}.profile.pkl"`` — letting a client read,
        touch or (via the invalid-entry discard) delete ``*.profile.pkl``
        files outside the served directory.
        """
        from repro.cache import DiskProfileCache

        rest = "a" * 61
        evil = "../" + rest  # exactly 64 chars: defeats a length-only check
        outside = tmp_path / f"{rest}.profile.pkl"
        outside.write_bytes(b"not an entry; outside the served directory")
        disk = DiskProfileCache(tmp_path / "store")
        with CacheServer(disk) as server:
            for path in ("/get", "/contains"):
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    self._post(server.url + path, json.dumps({"digest": evil}).encode())
                assert excinfo.value.code == 400, path
                assert "hex" in json.loads(excinfo.value.read().decode())["error"]
        # defense in depth: the digest-addressed disk lookup itself
        # refuses non-hex digests instead of building a path from them
        assert disk.get_by_digest(evil) is None
        assert disk.get_by_digest("A" * 64) is None  # uppercase is not a digest
        assert outside.read_bytes() == b"not an entry; outside the served directory"

    def test_health_and_stats_endpoints(self, server):
        with urllib.request.urlopen(server.url + "/health", timeout=5.0) as response:
            health = json.loads(response.read().decode("utf-8"))
        assert health["status"] == "ok"
        with urllib.request.urlopen(server.url + "/stats", timeout=5.0) as response:
            stats = json.loads(response.read().decode("utf-8"))
        assert {"entries", "stats", "tiers"} <= set(stats)
