"""Service failure modes: a dying cache server must never hurt a plan.

The acceptance bar of the subsystem's failure story: a full plan
survives its cache server being killed mid-run (the client degrades to
a local memory tier and the ranked alternatives come out byte-identical
to a never-cached run), and the degradation surfaces in the statistics
instead of in exceptions.
"""

from __future__ import annotations

import logging

import pytest

from repro.cache import DiskProfileCache, ProfileCache
from repro.core import Planner
from repro.service import CacheServer


class TestServerKilledMidPlan:
    @pytest.mark.parametrize("kill_after", [0, 2])
    def test_plan_completes_identically_after_mid_run_kill(
        self, tmp_path, make_config, linear_flow, kill_after, caplog
    ):
        """Kill the server after ``kill_after`` evaluated alternatives."""
        reference = Planner(configuration=make_config()).plan(linear_flow)

        server = CacheServer(DiskProfileCache(tmp_path / f"s{kill_after}")).start()
        config = make_config(
            cache_tier="http", cache_url=server.url, cache_timeout=2.0
        )
        planner = Planner(configuration=config)
        seen = {"count": 0}

        def killer(_alternative) -> None:
            seen["count"] += 1
            if seen["count"] == kill_after + 1 and server.running:
                server.stop()

        with caplog.at_level(logging.WARNING, logger="repro.cache.http"):
            if kill_after == 0:
                server.stop()  # dead before the very first lookup
                result = planner.plan(linear_flow)
            else:
                result = planner.plan(linear_flow, on_evaluated=killer)

        assert result.fingerprint() == reference.fingerprint()
        assert planner.profile_cache.degraded
        warnings = [r for r in caplog.records if "falling back" in r.getMessage()]
        assert len(warnings) == 1, "one warning, however often the dead server is hit"
        # the degradation is visible in the stats, not in exceptions
        tiers = planner.profile_cache.tier_stats()
        assert set(tiers) == {"http", "fallback"}

    def test_revived_server_wins_the_planner_back_mid_session(
        self, make_config, linear_flow
    ):
        """Kill mid-plan, revive: the probe re-attaches and republishes."""
        import time

        server = CacheServer(ProfileCache()).start()
        port = server.port
        config = make_config(
            cache_tier="http",
            cache_url=server.url,
            cache_timeout=2.0,
            cache_recovery_interval=0.05,
        )
        planner = Planner(configuration=config)
        seen = {"count": 0}

        def killer(_alternative) -> None:
            seen["count"] += 1
            if seen["count"] == 2 and server.running:
                server.stop()

        result = planner.plan(linear_flow, on_evaluated=killer)
        client = planner.profile_cache
        assert client.degraded  # the plan finished on the fallback tier
        assert len(client.fallback) > 0

        expected = len(client.fallback)
        revived = CacheServer(ProfileCache(), port=port).start()
        try:
            # Re-attach flips `degraded` first and then republishes, so
            # wait for the whole batch to land, not just the flip.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and (
                client.degraded
                or len(revived.backend) < expected
                or len(client._pending) > 0
            ):
                time.sleep(0.02)
            assert not client.degraded, "recovery probe never re-attached"
            # Every profile the fallback accumulated is on the server now...
            assert len(revived.backend) == expected
            assert len(client.fallback) == 0
            assert len(client._pending) == 0
            # ... so a re-plan is served warm by the revived server.
            hits_before = revived.stats.hits
            replanned = planner.plan(linear_flow)
            assert replanned.fingerprint() == result.fingerprint()
            assert revived.stats.hits > hits_before
        finally:
            revived.stop()
            client.close()

    def test_degraded_planner_keeps_serving_replans_locally(
        self, tmp_path, make_config, linear_flow
    ):
        """After degradation the fallback memoizes like the memory tier."""
        server = CacheServer(DiskProfileCache(tmp_path)).start()
        config = make_config(cache_tier="http", cache_url=server.url, cache_timeout=2.0)
        planner = Planner(configuration=config)
        server.stop()
        first = planner.plan(linear_flow)
        lookups_after_first = planner.profile_cache.stats.lookups
        second = planner.plan(linear_flow)  # re-plan: all served by the fallback
        assert second.fingerprint() == first.fingerprint()
        new_lookups = planner.profile_cache.stats.lookups - lookups_after_first
        assert planner.profile_cache.fallback.stats.hits >= new_lookups - 1


class TestClientDegradesOnAnyFailure:
    """The "never fails a plan" guarantee covers more than dead sockets."""

    def test_protocol_garbage_degrades_instead_of_raising(self, monkeypatch):
        """http.client.HTTPException (not an OSError) must degrade too."""
        import http.client

        from repro.cache.http import HTTPProfileCache

        client = HTTPProfileCache("http://127.0.0.1:1", timeout=1.0)

        def bad_server(*args, **kwargs):
            raise http.client.BadStatusLine("<html>not http/1.1</html>")

        monkeypatch.setattr(client._client, "request_json", bad_server)
        assert client.get(("k",)) is None  # degrades, no exception
        assert client.degraded

    def test_garbage_200_with_malformed_profiles_degrades(self, monkeypatch):
        """A 200 whose documents aren't profiles must not raise into a plan."""
        from repro.cache.http import HTTPProfileCache

        client = HTTPProfileCache("http://127.0.0.1:1", timeout=1.0)
        monkeypatch.setattr(
            client, "_request", lambda path, payload=None: {"profiles": [{"x": 1}]}
        )
        assert client.get(("k",)) is None  # falls back, no exception
        assert client.degraded

    def test_garbage_200_with_a_short_profiles_array_degrades(self, monkeypatch):
        """A 200 answering fewer documents than asked is not 'all misses'."""
        from repro.cache.http import HTTPProfileCache

        client = HTTPProfileCache("http://127.0.0.1:1", timeout=1.0)
        monkeypatch.setattr(client, "_request", lambda path, payload=None: {"ok": True})
        assert client.get_many([("a",), ("b",)]) == [None, None]
        assert client.degraded

    def test_garbage_200_with_a_non_object_body_degrades(self, monkeypatch):
        """A proxy answering 200 with a JSON array degrades like a dead socket."""
        from repro.cache.http import HTTPProfileCache

        client = HTTPProfileCache("http://127.0.0.1:1", timeout=1.0)
        monkeypatch.setattr(
            client._client, "request_json", lambda *args, **kwargs: [1, 2, 3]
        )
        assert client.get(("k",)) is None
        assert client.degraded

    def test_unserializable_key_degrades_on_flush_without_losing_the_entry(self):
        """json.dumps failures count as cache failures, not plan failures."""
        from repro.cache.http import HTTPProfileCache
        from repro.quality.composite import QualityProfile

        with CacheServer(ProfileCache()) as server:
            client = HTTPProfileCache(server.url, timeout=2.0)
            key = (b"bytes-are-hashable-but-not-json",)
            client.put(key, QualityProfile(flow_name="kept"))
            client.flush()  # TypeError inside the request -> degrade
            assert client.degraded
            assert client.get(key).flow_name == "kept"  # served by the fallback


class TestProcessPoolOverHTTP:
    @pytest.mark.slow
    def test_pooled_workers_read_through_the_cache_server(
        self, tmp_path, make_config, linear_flow
    ):
        """The process backend's per-worker clients reconnect and share."""
        with CacheServer(DiskProfileCache(tmp_path)) as server:
            config = make_config(
                cache_tier="http",
                cache_url=server.url,
                parallel_workers=2,
                backend="process",
            )
            sequential = Planner(configuration=make_config()).plan(linear_flow)
            pooled = Planner(configuration=config).plan(linear_flow)
            assert pooled.fingerprint() == sequential.fingerprint()
            # the parent's batched flush published every profile
            assert len(server.backend) > 0

    def test_worker_estimator_keeps_the_http_handle(self, tmp_path, make_config, linear_flow):
        """_init_worker reduces the cache to its persistent component: the client."""
        import pickle

        from repro.cache.http import HTTPProfileCache
        from repro.core import evaluator as evaluator_module
        from repro.core.evaluator import _evaluate_chunk_pooled, _init_worker

        with CacheServer(DiskProfileCache(tmp_path)) as server:
            config = make_config(cache_tier="http", cache_url=server.url)
            seeder = Planner(configuration=config)
            seeder.plan(linear_flow)  # warms the server (flush on stream end)

            fresh = Planner(configuration=config)
            alternatives = fresh.generate_alternatives(linear_flow)
            worker_estimator = pickle.loads(pickle.dumps(fresh.estimator))
            original = evaluator_module._WORKER_ESTIMATOR
            try:
                _init_worker(worker_estimator)
                assert isinstance(worker_estimator.cache, HTTPProfileCache)
                profiles = _evaluate_chunk_pooled(alternatives[:2])
                assert len(profiles) == 2 and all(p.values for p in profiles)
                # both served from the warm server in one batched lookup
                assert worker_estimator.cache.stats.hits == 2
            finally:
                evaluator_module._WORKER_ESTIMATOR = original
