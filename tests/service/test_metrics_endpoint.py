"""``GET /metrics`` over the wire: payload shape, prom text, auth, scrapes.

The monitoring contract: every server answers ``/metrics`` with its
registry snapshot plus derived golden metrics, the endpoint stays open
for unauthenticated probes (like ``/health``), and a scrape is a pure
read -- it never degrades a client mid-campaign or skews the latency
it reports.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.cache import ProfileCache
from repro.cache.http import HTTPProfileCache
from repro.quality.composite import QualityProfile
from repro.service import CacheServer, RedesignClient, RedesignServer

_WIRE_CONFIG = dict(
    pattern_budget=1,
    max_points_per_pattern=2,
    simulation_runs=1,
    max_alternatives=200,
    seed=7,
)


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return response.status, response.headers.get("Content-Type", ""), response.read()


def _get_json(url: str) -> dict:
    status, content_type, body = _get(url)
    assert status == 200
    assert content_type.startswith("application/json")
    return json.loads(body.decode())


@pytest.fixture()
def server():
    with CacheServer(ProfileCache()) as srv:
        yield srv


class TestCacheServerMetrics:
    def test_json_payload_shape(self, server):
        payload = _get_json(server.url + "/metrics")
        assert payload["server"] == "cache"
        assert set(payload["metrics"]) == {"counters", "gauges", "histograms"}
        assert isinstance(payload["golden"], dict)

    def test_traffic_shows_up_in_counters_and_golden(self, server):
        client = HTTPProfileCache(server.url, timeout=5.0)
        client.put(("k",), QualityProfile(flow_name="k"))
        client.flush()
        assert client.get(("k",)) is not None
        assert client.get(("absent",)) is None
        payload = _get_json(server.url + "/metrics")
        counters = payload["metrics"]["counters"]
        assert counters["cache.hits"] >= 1
        assert counters["cache.misses"] >= 1
        assert 0.0 < payload["golden"]["cache_hit_rate"] < 1.0
        assert payload["entries"] >= 1
        # the scrapes themselves were timed; the routed traffic too
        histograms = payload["metrics"]["histograms"]
        assert histograms["service.request_seconds"]["count"] > 0

    def test_prometheus_text_exposition(self, server):
        client = HTTPProfileCache(server.url, timeout=5.0)
        assert client.get(("absent",)) is None
        status, content_type, body = _get(server.url + "/metrics?format=prom")
        assert status == 200
        assert content_type.startswith("text/plain")
        text = body.decode()
        assert "# TYPE repro_cache_misses counter" in text
        assert "repro_cache_misses 1" in text
        assert text.endswith("\n")

    def test_unknown_format_is_a_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(server.url + "/metrics?format=xml", timeout=5.0)
        assert excinfo.value.code == 400
        assert "unknown metrics format" in json.loads(excinfo.value.read().decode())["error"]

    def test_metrics_stays_open_on_a_locked_server(self):
        with CacheServer(ProfileCache(), auth_token="s3cret") as locked:
            # other routes demand the token ...
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(locked.url + "/stats", timeout=5.0)
            assert excinfo.value.code == 401
            # ... monitoring probes do not
            assert _get_json(locked.url + "/metrics")["server"] == "cache"
            assert _get(locked.url + "/metrics?format=prom")[0] == 200


class TestRedesignServerMetrics:
    def test_plan_latency_reported_after_a_job(self, linear_flow):
        with RedesignServer(cache=ProfileCache(), workers=1) as srv:
            client = RedesignClient(srv.url, timeout=10.0)
            client.plan(linear_flow, _WIRE_CONFIG, timeout=60.0)
            payload = _get_json(srv.url + "/metrics")
            assert payload["server"] == "redesign"
            histograms = payload["metrics"]["histograms"]
            assert histograms["service.plan_seconds"]["count"] == 1
            assert histograms["service.plan_seconds"]["p99"] > 0
            assert payload["metrics"]["counters"]["service.plans_done"] == 1
            golden = payload["golden"]
            assert golden["plan_count"] == 1.0
            assert golden["plan_p99_seconds"] >= golden["plan_p50_seconds"] > 0


class TestScrapeIsAPureRead:
    def test_mid_campaign_scrapes_never_degrade_the_client(self, server):
        """A monitoring loop and a working client share one server."""
        client = HTTPProfileCache(server.url, timeout=5.0)
        for index in range(10):
            client.put(("warm", index), QualityProfile(flow_name=f"p{index}"))
        client.flush()

        stop = threading.Event()
        scrapes: list[dict] = []
        failures: list[str] = []

        def scrape_loop() -> None:
            while not stop.is_set():
                try:
                    scrapes.append(_get_json(server.url + "/metrics"))
                except Exception as error:  # noqa: BLE001 - recorded for the assert
                    failures.append(repr(error))

        scraper = threading.Thread(target=scrape_loop)
        scraper.start()
        try:
            for _ in range(20):
                results = client.get_many([("warm", index) for index in range(10)])
                assert all(result is not None for result in results)
        finally:
            stop.set()
            scraper.join()

        assert failures == []
        assert not client.degraded
        assert len(scrapes) >= 1
        # successive scrapes observe monotone counters -- no torn reads
        previous_hits = 0
        for payload in scrapes:
            hits = payload["metrics"]["counters"].get("cache.hits", 0)
            assert hits >= previous_hits
            previous_hits = hits
        # a final scrape, after all traffic, sees every hit
        final = _get_json(server.url + "/metrics")
        assert final["metrics"]["counters"]["cache.hits"] >= 200
