"""The cache service: server + HTTP client tier behaviour.

Covers the CacheBackend contract over the network (buffered writes
visible locally, one flush per campaign, logical stats), the fleet
scenario (two clients warm each other through one server), the digest
fast path across server restarts, stats pickling, and the planner-level
wiring of ``cache_tier="http"``.
"""

from __future__ import annotations

import logging
import pickle

import pytest

from repro.cache import DiskProfileCache, ProfileCache, key_digest
from repro.cache.http import HTTPProfileCache
from repro.core import Planner, ProcessingConfiguration, RedesignSession
from repro.quality.composite import QualityProfile
from repro.service import CacheServer


def _profile(name: str = "p") -> QualityProfile:
    return QualityProfile(flow_name=name)


@pytest.fixture()
def disk_server(tmp_path):
    with CacheServer(DiskProfileCache(tmp_path / "store")) as server:
        yield server


@pytest.fixture()
def client(disk_server):
    return HTTPProfileCache(disk_server.url, timeout=5.0)


class TestClientBackendContract:
    def test_put_buffers_until_flush_then_publishes(self, disk_server, client):
        key = ("k", 1)
        client.put(key, _profile("mine"))
        # buffered: visible to this instance, invisible to the server
        assert key in client
        assert client.get(key).flow_name == "mine"
        assert len(disk_server.backend) == 0
        client.flush()
        assert len(disk_server.backend) == 1
        # a second client now sees it through the server
        other = HTTPProfileCache(disk_server.url)
        assert other.get(key).flow_name == "mine"
        assert other.stats.hits == 1

    def test_stats_count_one_per_lookup_on_either_side(self, client):
        client.put(("a",), _profile())
        assert client.get(("a",)) is not None  # pending buffer hit
        assert client.get(("absent",)) is None  # server miss
        assert client.stats.hits == 1 and client.stats.misses == 1
        results = client.get_many([("a",), ("absent",), ("also-absent",)])
        assert [r is not None for r in results] == [True, False, False]
        assert client.stats.hits == 2 and client.stats.misses == 3

    def test_clear_resets_client_and_server(self, disk_server, client):
        client.put(("k",), _profile())
        client.flush()
        client.clear()
        assert len(disk_server.backend) == 0
        assert client.stats.lookups == 0
        assert client.get(("k",)) is None

    def test_tier_stats_exposes_client_server_fallback(self, client):
        client.get(("missing",))
        tiers = client.tier_stats()
        assert set(tiers) == {"http", "server", "fallback"}
        assert tiers["http"]["misses"] == 1
        assert tiers["server"]["misses"] == 1
        assert tiers["fallback"]["lookups"] == 0

    def test_pickles_as_a_handle_with_stats(self, disk_server, client):
        client.put(("k",), _profile("published"))
        client.flush()
        assert client.get(("k",)) is not None
        clone = pickle.loads(pickle.dumps(client))
        # stats round-trip (PR 4 discipline); buffer does not
        assert clone.stats.hits == client.stats.hits
        assert clone.stats.misses == client.stats.misses
        # the clone is a live handle onto the same server
        assert clone.get(("k",)).flow_name == "published"

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ValueError):
            HTTPProfileCache("http://127.0.0.1:1", timeout=0)


class TestSharedServer:
    def test_two_clients_see_each_others_warm_entries(self, disk_server):
        a = HTTPProfileCache(disk_server.url)
        b = HTTPProfileCache(disk_server.url)
        a.put(("shared",), _profile("from-a"))
        a.flush()
        assert b.get(("shared",)).flow_name == "from-a"
        b.put(("back",), _profile("from-b"))
        b.flush()
        assert a.get(("back",)).flow_name == "from-b"
        assert disk_server.stats.hits == 2

    def test_digest_path_survives_a_server_restart(self, tmp_path):
        """A fresh server on a warm cache_dir serves old entries by digest."""
        store = tmp_path / "store"
        key = ("persisted", 1)
        with CacheServer(DiskProfileCache(store)) as first:
            warm = HTTPProfileCache(first.url)
            warm.put(key, _profile("old"))
            warm.flush()
        with CacheServer(DiskProfileCache(store)) as second:
            fresh = HTTPProfileCache(second.url)
            assert fresh.get(key).flow_name == "old"
            # served through DiskProfileCache.get_by_digest: the new
            # server never saw the key, only its digest
            assert second.stats.hits == 1

    def test_entries_shared_bit_for_bit_with_local_disk_planners(self, tmp_path):
        """A local disk tier and the server address the same files."""
        store = tmp_path / "store"
        local = DiskProfileCache(store)
        key = ("local-write",)
        local.put(key, _profile("direct"))
        with CacheServer(DiskProfileCache(store)) as server:
            over_http = HTTPProfileCache(server.url)
            assert over_http.get(key).flow_name == "direct"
        assert local._path(key).name.startswith(key_digest(key))


class TestMemoryBackedServer:
    def test_in_memory_scratch_server(self):
        with CacheServer(ProfileCache()) as server:
            client = HTTPProfileCache(server.url)
            client.put(("k",), _profile("scratch"))
            client.flush()
            other = HTTPProfileCache(server.url)
            assert other.get(("k",)).flow_name == "scratch"
            assert ("k",) in other

    def test_hot_map_eviction_falls_back_to_the_key_index(self):
        with CacheServer(ProfileCache(), max_hot_entries=1) as server:
            client = HTTPProfileCache(server.url)
            client.put(("a",), _profile("pa"))
            client.put(("b",), _profile("pb"))
            client.flush()
            # "a" was evicted from the hot map; the key index still
            # reaches it through the backend
            assert client.get(("a",)).flow_name == "pa"
            assert client.get(("b",)).flow_name == "pb"

    def test_key_index_prunes_entries_the_backend_evicted(self):
        """The digest->key index stays bounded by the backend's content."""
        with CacheServer(ProfileCache(max_entries=1), max_hot_entries=1) as server:
            client = HTTPProfileCache(server.url)
            client.put(("a",), _profile("pa"))
            client.flush()
            client.put(("b",), _profile("pb"))
            client.flush()  # the bounded backend evicted "a"
            assert client.get(("a",)) is None
            assert client.get(("b",)).flow_name == "pb"
            # the index dropped the evicted digest instead of keeping
            # the stale entry forever
            assert key_digest(("a",)) not in server._keys
            assert key_digest(("b",)) in server._keys

    def test_key_index_never_outgrows_a_bounded_backend(self):
        """Storing many distinct keys must not grow the index with history."""
        # max_hot_entries=1 so the final lookup goes through the key
        # index, not the hot document map
        with CacheServer(ProfileCache(max_entries=2), max_hot_entries=1) as server:
            client = HTTPProfileCache(server.url)
            for i in range(20):
                client.put((f"k{i}",), _profile(f"p{i}"))
                client.flush()
            assert len(server._keys) <= len(server.backend) == 2
            # the surviving index entries still resolve their profiles
            assert client.get(("k18",)).flow_name == "p18"
            assert client.get(("k19",)).flow_name == "p19"


class TestBackgroundEvictionWiring:
    def test_server_runs_the_sweeper_and_stops_it(self, tmp_path):
        probe = DiskProfileCache(tmp_path / "probe")
        probe.put(("probe",), _profile())
        entry_size = probe.size_bytes()
        disk = DiskProfileCache(tmp_path / "store", max_bytes=entry_size * 2)
        server = CacheServer(disk, eviction_interval=3600.0).start()
        try:
            client = HTTPProfileCache(server.url)
            for i in range(5):
                client.put((f"k{i}",), _profile(f"p{i}"))
            client.flush()
            # the write path did not sweep
            assert disk.size_bytes() > disk.max_bytes
        finally:
            server.stop()  # final sweep
        assert disk.size_bytes() <= disk.max_bytes
        assert disk._sweeper is None

    def test_eviction_interval_requires_a_disk_backend(self):
        with pytest.raises(ValueError, match="disk-backed"):
            CacheServer(ProfileCache(), eviction_interval=1.0)


class TestPlannerWiring:
    def test_cache_tier_http_builds_the_client_and_plans_warm(
        self, disk_server, make_config, linear_flow
    ):
        config = make_config(cache_tier="http", cache_url=disk_server.url)
        cold = Planner(configuration=config)
        assert isinstance(cold.profile_cache, HTTPProfileCache)
        cold_result = cold.plan(linear_flow)
        assert cold.profile_cache.stats.misses > 0
        warm = Planner(configuration=config)  # fresh client, warm server
        warm_result = warm.plan(linear_flow)
        assert warm.profile_cache.stats.misses == 0
        assert warm.profile_cache.stats.hits == warm.profile_cache.stats.lookups
        assert len(warm_result.alternatives) == len(cold_result.alternatives)

    def test_session_cache_stats_show_the_network_tiers(
        self, disk_server, make_config, linear_flow
    ):
        session = RedesignSession(
            linear_flow,
            configuration=make_config(cache_tier="http", cache_url=disk_server.url),
        )
        session.iterate()
        stats = session.cache_stats()
        assert stats["lookups"] > 0
        assert {"http", "server", "fallback"} <= set(stats["tiers"])
        assert stats["tiers"]["http"]["lookups"] == stats["lookups"]

    def test_configuration_validation(self, tmp_path):
        with pytest.raises(ValueError, match="requires a cache_url"):
            ProcessingConfiguration(cache_tier="http")
        with pytest.raises(ValueError, match="cache_url only applies"):
            ProcessingConfiguration(cache_url="http://x")
        with pytest.raises(ValueError, match="cache_timeout"):
            ProcessingConfiguration(
                cache_tier="http", cache_url="http://x", cache_timeout=0
            )
        with pytest.raises(ValueError, match="cache_max_bytes"):
            ProcessingConfiguration(
                cache_tier="http", cache_url="http://x", cache_max_bytes=1 << 20
            )
        with pytest.raises(ValueError, match="cache_dir does not apply"):
            ProcessingConfiguration(
                cache_tier="http", cache_url="http://x", cache_dir=str(tmp_path)
            )
        config = ProcessingConfiguration(
            cache_tier="http", cache_url="http://x", cache_timeout=0.5
        )
        assert config.cache_timeout == 0.5


class TestDegradation:
    def test_unreachable_server_logs_once_and_falls_back(self, caplog):
        client = HTTPProfileCache("http://127.0.0.1:9", timeout=0.2)  # discard port
        with caplog.at_level(logging.WARNING, logger="repro.cache.http"):
            assert client.get(("k",)) is None
            client.put(("k",), _profile("local"))
            assert client.get(("k",)).flow_name == "local"  # served by the fallback
            assert client.get(("other",)) is None
        warnings = [r for r in caplog.records if "falling back" in r.getMessage()]
        assert len(warnings) == 1, "degradation is logged exactly once"
        assert client.degraded
        tiers = client.tier_stats()
        assert set(tiers) == {"http", "fallback"}  # no server section when dark
        assert tiers["http"]["lookups"] == client.stats.lookups

    def test_pending_writes_move_into_the_fallback(self):
        with CacheServer(ProfileCache()) as server:
            client = HTTPProfileCache(server.url, timeout=0.5)
            client.put(("buffered",), _profile("survives"))
            server.stop()
        client.flush()  # fails -> degrades; the buffer must not be lost
        assert client.degraded
        assert client.get(("buffered",)).flow_name == "survives"

    def test_degraded_pickle_clone_retries_the_server(self, tmp_path):
        with CacheServer(DiskProfileCache(tmp_path)) as server:
            doomed = HTTPProfileCache(server.url, timeout=0.5)
            seeder = HTTPProfileCache(server.url)
            seeder.put(("k",), _profile("alive"))
            seeder.flush()
            doomed._degrade(RuntimeError("simulated outage"))
            assert doomed.degraded
            clone = pickle.loads(pickle.dumps(doomed))
            assert not clone.degraded
            assert clone.get(("k",)).flow_name == "alive"
