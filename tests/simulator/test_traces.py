"""Unit tests for trace records and archives."""

import pytest

from repro.simulator.traces import FlowTrace, OperationTrace, TraceArchive


def _trace(cycle=100.0, loaded=50.0, extracted=100.0, succeeded=True, lost=0.0,
           nulls=5.0, dups=2.0, errors=1.0, cost=0.5, name="flow"):
    trace = FlowTrace(flow_name=name)
    trace.operations["src"] = OperationTrace("src", "extract_table", rows_in=extracted,
                                             rows_out=extracted, time_ms=10.0)
    trace.operations["load"] = OperationTrace(
        "load", "load_table", rows_in=loaded, rows_out=loaded, time_ms=20.0,
        null_rows=nulls, duplicate_rows=dups, error_rows=errors,
    )
    trace.cycle_time_ms = cycle
    trace.rows_loaded = loaded
    trace.rows_extracted = extracted
    trace.succeeded = succeeded
    trace.lost_work_ms = lost
    trace.monetary_cost = cost
    trace.freshness_lag_minutes = 30.0
    trace.update_frequency_per_day = 24.0
    return trace


class TestFlowTrace:
    def test_operation_accessor(self):
        trace = _trace()
        assert trace.operation("src").kind == "extract_table"
        with pytest.raises(KeyError):
            trace.operation("missing")

    def test_defect_totals_only_count_sinks(self):
        trace = _trace(nulls=7.0, dups=3.0, errors=2.0)
        assert trace.total_null_rows == 7.0
        assert trace.total_duplicate_rows == 3.0
        assert trace.total_error_rows == 2.0

    def test_latency_per_tuple(self):
        trace = _trace(cycle=200.0, extracted=100.0)
        assert trace.average_latency_per_tuple_ms == pytest.approx(2.0)

    def test_latency_with_no_extraction(self):
        trace = _trace(extracted=0.0)
        assert trace.average_latency_per_tuple_ms == 0.0

    def test_selectivity_of_operation_trace(self):
        op = OperationTrace("x", "filter", rows_in=100, rows_out=25)
        assert op.selectivity == pytest.approx(0.25)
        assert OperationTrace("y", "filter").selectivity == 1.0


class TestTraceArchive:
    def test_empty_archive_rejects_aggregates(self):
        archive = TraceArchive("flow")
        assert len(archive) == 0
        with pytest.raises(ValueError):
            archive.mean_cycle_time_ms()

    def test_add_rejects_other_flow(self):
        archive = TraceArchive("flow")
        with pytest.raises(ValueError):
            archive.add(_trace(name="other"))

    def test_basic_aggregates(self):
        archive = TraceArchive("flow", [_trace(cycle=100.0), _trace(cycle=300.0)])
        assert archive.mean_cycle_time_ms() == pytest.approx(200.0)
        assert archive.mean_rows_loaded() == pytest.approx(50.0)
        assert archive.mean_monetary_cost() == pytest.approx(0.5)
        assert archive.mean_freshness_lag_minutes() == pytest.approx(30.0)
        assert archive.mean_update_frequency() == pytest.approx(24.0)

    def test_iteration_and_indexing(self):
        traces = [_trace(cycle=float(i)) for i in range(5)]
        archive = TraceArchive("flow", traces)
        assert archive[0].cycle_time_ms == 0.0
        assert len(list(archive)) == 5

    def test_percentiles(self):
        archive = TraceArchive("flow", [_trace(cycle=float(c)) for c in range(1, 101)])
        assert archive.percentile_cycle_time_ms(95) == pytest.approx(95.0, abs=2)
        with pytest.raises(ValueError):
            archive.percentile_cycle_time_ms(0)

    def test_success_rate(self):
        archive = TraceArchive(
            "flow", [_trace(succeeded=True), _trace(succeeded=False), _trace(succeeded=True)]
        )
        assert archive.success_rate() == pytest.approx(2 / 3)

    def test_lost_work(self):
        archive = TraceArchive("flow", [_trace(lost=10.0), _trace(lost=30.0)])
        assert archive.mean_lost_work_ms() == pytest.approx(20.0)

    def test_defect_rates(self):
        archive = TraceArchive("flow", [_trace(loaded=100.0, nulls=10.0, dups=5.0, errors=1.0)])
        rates = archive.mean_defect_rates()
        assert rates["null_rate"] == pytest.approx(0.1)
        assert rates["duplicate_rate"] == pytest.approx(0.05)
        assert rates["error_rate"] == pytest.approx(0.01)

    def test_operation_time_breakdown(self):
        archive = TraceArchive("flow", [_trace(), _trace()])
        breakdown = archive.operation_time_breakdown()
        assert breakdown["src"] == pytest.approx(10.0)
        assert breakdown["load"] == pytest.approx(20.0)

    def test_summary_keys(self):
        archive = TraceArchive("flow", [_trace()])
        summary = archive.summary()
        expected_keys = {
            "runs", "mean_cycle_time_ms", "mean_latency_per_tuple_ms", "success_rate",
            "mean_lost_work_ms", "mean_rows_loaded", "mean_monetary_cost",
            "null_rate", "duplicate_rate", "error_rate",
        }
        assert set(summary) == expected_keys
        assert summary["runs"] == 1.0
