"""Unit tests for the resource model."""

import pytest

from repro.simulator.resources import ResourceModel, ResourceTier


class TestResourceModel:
    def test_defaults(self):
        model = ResourceModel()
        assert model.workers == 4
        assert model.speed == 1.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ResourceModel(workers=0)
        with pytest.raises(ValueError):
            ResourceModel(speed=0.0)
        with pytest.raises(ValueError):
            ResourceModel(cost_per_hour=-1.0)

    def test_from_tier(self):
        small = ResourceModel.from_tier(ResourceTier.SMALL)
        xlarge = ResourceModel.from_tier("xlarge")
        assert xlarge.workers > small.workers
        assert xlarge.speed > small.speed
        assert xlarge.cost_per_hour > small.cost_per_hour

    def test_tiers_are_ordered(self):
        tiers = [ResourceTier.SMALL, ResourceTier.MEDIUM, ResourceTier.LARGE, ResourceTier.XLARGE]
        models = [ResourceModel.from_tier(t) for t in tiers]
        workers = [m.workers for m in models]
        costs = [m.cost_per_hour for m in models]
        assert workers == sorted(workers)
        assert costs == sorted(costs)

    def test_effective_parallelism_capped_by_workers(self):
        model = ResourceModel(workers=4)
        assert model.effective_parallelism(1) == 1
        assert model.effective_parallelism(3) == 3
        assert model.effective_parallelism(100) == 4
        assert model.effective_parallelism(0) == 1

    def test_scale_time(self):
        fast = ResourceModel(speed=2.0)
        assert fast.scale_time(100.0) == pytest.approx(50.0)

    def test_cost_of(self):
        model = ResourceModel(cost_per_hour=3.6)
        # one hour of occupation costs cost_per_hour
        assert model.cost_of(3_600_000.0) == pytest.approx(3.6)
        assert model.cost_of(0.0) == 0.0
