"""Unit tests for failure injection and checkpoint recovery."""

import pytest

from repro.etl.builder import FlowBuilder
from repro.etl.operations import OperationKind
from repro.etl.schema import DataType, Field, Schema
from repro.simulator.failures import FailureInjector


def _schema():
    return Schema.of(Field("id", DataType.INTEGER, nullable=False, key=True))


def _flow_with_checkpoint(with_checkpoint: bool):
    builder = FlowBuilder("reliability")
    src = builder.extract_table("src", schema=_schema(), rows=100)
    flt = builder.filter("flt", predicate="p", selectivity=0.9, after=src)
    if with_checkpoint:
        checkpoint = builder.add(OperationKind.CHECKPOINT, "cp", after=flt)
        previous = checkpoint
    else:
        previous = flt
    derive = builder.derive("expensive", cost_per_tuple=0.5, after=previous)
    derive.properties.failure_rate = 0.5
    builder.load_table("load", after=derive)
    return builder.build(), derive


class TestFailureSampling:
    def test_no_failures_with_zero_rates(self, linear_flow):
        # strip the failure rate configured by the fixture
        for op in linear_flow.operations():
            op.properties.failure_rate = 0.0
        injector = FailureInjector(linear_flow)
        draws = {op.op_id: 0.0 for op in linear_flow.operations()}
        assert injector.sample_failures(draws) == []
        assert injector.flow_failure_probability() == pytest.approx(0.0)

    def test_failure_sampled_when_draw_below_rate(self, linear_flow):
        injector = FailureInjector(linear_flow)
        failing = next(
            op for op in linear_flow.operations() if op.properties.failure_rate > 0
        )
        draws = {op.op_id: 1.0 for op in linear_flow.operations()}
        draws[failing.op_id] = failing.properties.failure_rate / 2
        assert injector.sample_failures(draws) == [failing.op_id]

    def test_flow_failure_probability_combines_rates(self):
        flow, _ = _flow_with_checkpoint(False)
        injector = FailureInjector(flow)
        assert injector.flow_failure_probability() == pytest.approx(0.5)

    def test_failure_probability_of_single_operation(self, linear_flow):
        injector = FailureInjector(linear_flow)
        failing = next(
            op for op in linear_flow.operations() if op.properties.failure_rate > 0
        )
        assert injector.failure_probability(failing.op_id) == pytest.approx(
            failing.properties.failure_rate
        )


class TestRecovery:
    def test_without_checkpoint_all_upstream_work_is_lost(self):
        flow, derive = _flow_with_checkpoint(False)
        injector = FailureInjector(flow)
        times = {op.op_id: 10.0 for op in flow.operations()}
        event = injector.lost_work_for_failure(derive.op_id, times)
        # src + flt + derive itself
        assert event.lost_work_ms == pytest.approx(30.0)
        assert event.recovered_from == ""

    def test_with_checkpoint_only_work_after_it_is_lost(self):
        flow, derive = _flow_with_checkpoint(True)
        injector = FailureInjector(flow)
        assert injector.checkpoint_ids
        times = {op.op_id: 10.0 for op in flow.operations()}
        event = injector.lost_work_for_failure(derive.op_id, times)
        # only the derive itself must be repeated
        assert event.lost_work_ms == pytest.approx(10.0)
        assert event.recovered_from in injector.checkpoint_ids

    def test_checkpoint_after_failure_point_does_not_protect(self):
        builder = FlowBuilder("late_cp")
        src = builder.extract_table("src", schema=_schema(), rows=100)
        derive = builder.derive("expensive", cost_per_tuple=0.5, after=src)
        derive.properties.failure_rate = 0.5
        builder.add(OperationKind.CHECKPOINT, "cp", after=derive)
        builder.load_table("load")
        flow = builder.build()
        injector = FailureInjector(flow)
        times = {op.op_id: 10.0 for op in flow.operations()}
        event = injector.lost_work_for_failure(derive.op_id, times)
        assert event.recovered_from == ""
        assert event.lost_work_ms == pytest.approx(20.0)

    def test_nearest_checkpoint_is_used(self):
        builder = FlowBuilder("two_cp")
        src = builder.extract_table("src", schema=_schema(), rows=100)
        cp1 = builder.add(OperationKind.CHECKPOINT, "cp1", after=src)
        mid = builder.derive("mid", cost_per_tuple=0.1, after=cp1)
        cp2 = builder.add(OperationKind.CHECKPOINT, "cp2", after=mid)
        final = builder.derive("final", cost_per_tuple=0.5, after=cp2)
        final.properties.failure_rate = 0.5
        builder.load_table("load", after=final)
        flow = builder.build()
        injector = FailureInjector(flow)
        times = {op.op_id: 10.0 for op in flow.operations()}
        event = injector.lost_work_for_failure(final.op_id, times)
        assert event.recovered_from == cp2.op_id
        assert event.lost_work_ms == pytest.approx(10.0)

    def test_recovery_events_batch(self):
        flow, derive = _flow_with_checkpoint(True)
        injector = FailureInjector(flow)
        times = {op.op_id: 5.0 for op in flow.operations()}
        events = injector.recovery_events([derive.op_id, derive.op_id], times)
        assert len(events) == 2
        assert all(e.op_id == derive.op_id for e in events)
