"""Unit and behavioural tests for the ETL runtime simulator."""

import pytest

from repro.etl.builder import FlowBuilder
from repro.etl.operations import OperationKind
from repro.etl.schema import DataType, Field, Schema
from repro.simulator.engine import ETLSimulator, SimulationConfig, simulate_flow
from repro.simulator.resources import ResourceModel


def _schema():
    return Schema.of(
        Field("id", DataType.INTEGER, nullable=False, key=True),
        Field("value", DataType.DECIMAL),
    )


def _simple_flow(rows=1_000, selectivity=0.5, null_rate=0.2, duplicate_rate=0.1, error_rate=0.05):
    builder = FlowBuilder("sim")
    src = builder.extract_table(
        "src", schema=_schema(), rows=rows, null_rate=null_rate,
        duplicate_rate=duplicate_rate, error_rate=error_rate, freshness_lag=60.0,
    )
    builder.filter("flt", predicate="p", selectivity=selectivity, after=src)
    builder.load_table("load")
    return builder.build()


class TestBasicSimulation:
    def test_reproducible_with_same_seed(self, linear_flow):
        a = simulate_flow(linear_flow, runs=3, seed=11)
        b = simulate_flow(linear_flow, runs=3, seed=11)
        assert a.summary() == b.summary()

    def test_different_seeds_differ(self, linear_flow):
        a = simulate_flow(linear_flow, runs=3, seed=1)
        b = simulate_flow(linear_flow, runs=3, seed=2)
        assert a.mean_cycle_time_ms() != b.mean_cycle_time_ms()

    def test_requested_number_of_runs(self, linear_flow):
        archive = simulate_flow(linear_flow, runs=4, seed=1)
        assert len(archive) == 4

    def test_every_operation_is_traced(self, branching_flow):
        trace = ETLSimulator(branching_flow, SimulationConfig(runs=1, seed=1)).run_once()
        assert set(trace.operations) == set(branching_flow.operation_ids())

    def test_rows_flow_through_selectivities(self):
        flow = _simple_flow(rows=1_000, selectivity=0.5)
        trace = ETLSimulator(flow, SimulationConfig(runs=1, seed=1, volume_jitter=0.0)).run_once()
        flt = next(t for t in trace.operations.values() if t.kind == "filter")
        assert flt.rows_out == pytest.approx(flt.rows_in * 0.5)
        load = next(t for t in trace.operations.values() if t.kind == "load_table")
        assert trace.rows_loaded == pytest.approx(load.rows_out)
        assert trace.rows_extracted == pytest.approx(1_000.0)

    def test_cycle_time_positive_and_contains_critical_path(self, linear_flow):
        trace = ETLSimulator(linear_flow, SimulationConfig(runs=1, seed=2)).run_once()
        assert trace.cycle_time_ms >= trace.critical_path_ms > 0
        total_time = sum(t.time_ms for t in trace.operations.values())
        assert trace.critical_path_ms <= total_time + 1e-9

    def test_monetary_cost_positive(self, linear_flow):
        archive = simulate_flow(linear_flow, runs=2, seed=2)
        assert archive.mean_monetary_cost() > 0


class TestDefectPropagation:
    def test_defects_originate_at_sources(self):
        flow = _simple_flow(null_rate=0.2, duplicate_rate=0.1, error_rate=0.05)
        trace = ETLSimulator(flow, SimulationConfig(runs=1, seed=3)).run_once()
        src = next(t for t in trace.operations.values() if t.kind == "extract_table")
        assert src.null_rows > 0
        assert src.duplicate_rows > 0
        assert src.error_rows > 0

    def test_filter_nulls_removes_null_rows(self):
        builder = FlowBuilder("dq")
        src = builder.extract_table("src", schema=_schema(), rows=1_000, null_rate=0.3)
        builder.add(OperationKind.FILTER_NULLS, "fn", after=src)
        builder.load_table("load")
        flow = builder.build()
        trace = ETLSimulator(flow, SimulationConfig(runs=1, seed=3)).run_once()
        assert trace.total_null_rows == 0
        load = next(t for t in trace.operations.values() if t.kind == "load_table")
        src_trace = next(t for t in trace.operations.values() if t.kind == "extract_table")
        assert load.rows_out == pytest.approx(src_trace.rows_out - src_trace.null_rows)

    def test_deduplicate_removes_duplicates(self):
        builder = FlowBuilder("dq")
        src = builder.extract_table("src", schema=_schema(), rows=1_000, duplicate_rate=0.2)
        builder.add(OperationKind.DEDUPLICATE, "dd", after=src)
        builder.load_table("load")
        flow = builder.build()
        trace = ETLSimulator(flow, SimulationConfig(runs=1, seed=3)).run_once()
        assert trace.total_duplicate_rows == 0

    def test_crosscheck_corrects_most_errors(self):
        builder = FlowBuilder("dq")
        src = builder.extract_table("src", schema=_schema(), rows=1_000, error_rate=0.2)
        builder.add(OperationKind.CROSSCHECK, "cc", after=src)
        builder.load_table("load")
        flow = builder.build()
        with_cc = ETLSimulator(flow, SimulationConfig(runs=1, seed=3)).run_once()

        plain = _simple_flow(rows=1_000, selectivity=1.0, error_rate=0.2)
        without = ETLSimulator(plain, SimulationConfig(runs=1, seed=3)).run_once()
        assert with_cc.total_error_rows < without.total_error_rows

    def test_defects_never_exceed_rows(self, branching_flow):
        trace = ETLSimulator(branching_flow, SimulationConfig(runs=1, seed=5)).run_once()
        for op_trace in trace.operations.values():
            assert op_trace.null_rows <= op_trace.rows_out + 1e-9
            assert op_trace.duplicate_rows <= op_trace.rows_out + 1e-9
            assert op_trace.error_rows <= op_trace.rows_out + 1e-9


class TestPerformanceModel:
    def test_parallelism_reduces_time(self):
        flow = _simple_flow(rows=10_000, selectivity=1.0)
        flt = next(op for op in flow.operations() if op.kind is OperationKind.FILTER)
        flt.properties.cost_per_tuple = 0.05
        base = ETLSimulator(flow, SimulationConfig(runs=1, seed=7, volume_jitter=0.0)).run_once()

        parallel = flow.copy()
        parallel_flt = parallel.operation(flt.op_id)
        parallel_flt.config["parallelism"] = 4
        fast = ETLSimulator(parallel, SimulationConfig(runs=1, seed=7, volume_jitter=0.0)).run_once()
        assert fast.operations[flt.op_id].time_ms < base.operations[flt.op_id].time_ms
        assert fast.cycle_time_ms < base.cycle_time_ms

    def test_parallelism_capped_by_resource_workers(self):
        flow = _simple_flow(rows=10_000, selectivity=1.0)
        flt = next(op for op in flow.operations() if op.kind is OperationKind.FILTER)
        flt.properties.cost_per_tuple = 0.05
        flt.config["parallelism"] = 16
        config = SimulationConfig(
            runs=1, seed=7, volume_jitter=0.0, resources=ResourceModel(workers=2)
        )
        trace = ETLSimulator(flow, config).run_once()
        assert trace.operations[flt.op_id].parallelism == 2

    def test_faster_resources_lower_cycle_time(self, linear_flow):
        slow = SimulationConfig(runs=1, seed=7, volume_jitter=0.0,
                                resources=ResourceModel(speed=0.5))
        fast = SimulationConfig(runs=1, seed=7, volume_jitter=0.0,
                                resources=ResourceModel(speed=2.0))
        slow_trace = ETLSimulator(linear_flow, slow).run_once()
        fast_trace = ETLSimulator(linear_flow, fast).run_once()
        assert fast_trace.critical_path_ms < slow_trace.critical_path_ms

    def test_resource_tier_annotation_overrides_config(self, linear_flow):
        annotated = linear_flow.copy()
        annotated.annotations["resource_tier"] = "xlarge"
        base = ETLSimulator(linear_flow, SimulationConfig(runs=1, seed=7, volume_jitter=0.0)).run_once()
        upgraded = ETLSimulator(annotated, SimulationConfig(runs=1, seed=7, volume_jitter=0.0)).run_once()
        assert upgraded.critical_path_ms < base.critical_path_ms
        assert upgraded.monetary_cost > 0

    def test_encryption_annotation_adds_overhead(self, linear_flow):
        encrypted = linear_flow.copy()
        encrypted.annotations["encryption"] = True
        base = ETLSimulator(linear_flow, SimulationConfig(runs=1, seed=7, volume_jitter=0.0)).run_once()
        enc = ETLSimulator(encrypted, SimulationConfig(runs=1, seed=7, volume_jitter=0.0)).run_once()
        assert enc.critical_path_ms > base.critical_path_ms


class TestReliabilityAndFreshness:
    def test_checkpoint_improves_success_rate(self):
        def build(with_checkpoint: bool):
            builder = FlowBuilder("rel")
            # Expensive upstream work that a checkpoint protects from repetition.
            src = builder.extract_table(
                "src", schema=_schema(), rows=1_000, cost_per_tuple=0.2,
            )
            mid = builder.filter("flt", predicate="p", selectivity=0.9, after=src,
                                 cost_per_tuple=0.05)
            if with_checkpoint:
                mid = builder.add(OperationKind.CHECKPOINT, "cp", after=mid)
            derive = builder.derive("fragile", cost_per_tuple=0.005, after=mid)
            derive.properties.failure_rate = 0.5
            builder.load_table("load", after=derive)
            return builder.build()

        runs = 40
        base = simulate_flow(build(False), runs=runs, seed=13)
        protected = simulate_flow(build(True), runs=runs, seed=13)
        assert protected.success_rate() > base.success_rate()
        assert protected.mean_lost_work_ms() < base.mean_lost_work_ms()

    def test_schedule_frequency_affects_freshness_and_cost(self, linear_flow):
        frequent = linear_flow.copy()
        frequent.annotations["schedule_frequency_per_day"] = 96.0
        rare = linear_flow.copy()
        rare.annotations["schedule_frequency_per_day"] = 4.0
        frequent_archive = simulate_flow(frequent, runs=2, seed=5)
        rare_archive = simulate_flow(rare, runs=2, seed=5)
        assert frequent_archive.mean_freshness_lag_minutes() < rare_archive.mean_freshness_lag_minutes()
        assert frequent_archive.mean_monetary_cost() > rare_archive.mean_monetary_cost()

    def test_freshness_includes_source_lag(self):
        flow = _simple_flow()
        archive = simulate_flow(flow, runs=1, seed=5)
        assert archive.mean_freshness_lag_minutes() >= 60.0
