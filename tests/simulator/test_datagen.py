"""Unit tests for the synthetic data generator and source profiles."""

import pytest

from repro.etl.operations import Operation, OperationKind
from repro.etl.properties import OperationProperties
from repro.simulator.datagen import SourceProfile, SyntheticDataGenerator


class TestSourceProfile:
    def test_defaults(self):
        profile = SourceProfile()
        assert profile.rows == 1000
        assert profile.null_rate == 0.0

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            SourceProfile(null_rate=1.5)
        with pytest.raises(ValueError):
            SourceProfile(rows=-1)

    def test_from_operation(self):
        op = Operation(
            OperationKind.EXTRACT_TABLE,
            config={"rows": 321},
            properties=OperationProperties(
                null_rate=0.1, duplicate_rate=0.05, error_rate=0.02,
                freshness_lag=15.0, update_frequency=4.0,
            ),
        )
        profile = SourceProfile.from_operation(op)
        assert profile.rows == 321
        assert profile.null_rate == pytest.approx(0.1)
        assert profile.update_frequency_per_day == pytest.approx(4.0)


class TestSyntheticDataGenerator:
    def test_deterministic_for_same_seed(self):
        profile = SourceProfile(rows=10_000, null_rate=0.1, duplicate_rate=0.05, error_rate=0.02)
        a = SyntheticDataGenerator(seed=42).sample(profile)
        b = SyntheticDataGenerator(seed=42).sample(profile)
        assert a == b

    def test_different_seeds_differ(self):
        profile = SourceProfile(rows=10_000, null_rate=0.1)
        a = SyntheticDataGenerator(seed=1).sample(profile)
        b = SyntheticDataGenerator(seed=2).sample(profile)
        assert a != b

    def test_sampled_volumes_respect_jitter(self):
        profile = SourceProfile(rows=10_000)
        generator = SyntheticDataGenerator(seed=5, jitter=0.1)
        for _ in range(20):
            sample = generator.sample(profile)
            assert 9_000 <= sample["rows"] <= 11_000

    def test_defect_counts_bounded_by_rows(self):
        profile = SourceProfile(rows=5_000, null_rate=0.5, duplicate_rate=0.5, error_rate=0.5)
        generator = SyntheticDataGenerator(seed=9)
        sample = generator.sample(profile)
        for key in ("null_rows", "duplicate_rows", "error_rows"):
            assert 0 <= sample[key] <= sample["rows"]

    def test_zero_rows(self):
        sample = SyntheticDataGenerator(seed=1).sample(SourceProfile(rows=0))
        assert sample["rows"] == 0
        assert sample["null_rows"] == 0

    def test_extreme_rates(self):
        profile = SourceProfile(rows=100, null_rate=1.0, error_rate=0.0)
        sample = SyntheticDataGenerator(seed=1, jitter=0.0).sample(profile)
        assert sample["null_rows"] == sample["rows"]
        assert sample["error_rows"] == 0

    def test_invalid_jitter_rejected(self):
        with pytest.raises(ValueError):
            SyntheticDataGenerator(jitter=1.0)

    def test_uniform_and_random_within_bounds(self):
        generator = SyntheticDataGenerator(seed=3)
        assert 2.0 <= generator.uniform(2.0, 5.0) <= 5.0
        assert 0.0 <= generator.random() < 1.0
