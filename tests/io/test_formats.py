"""Tests for the xLM / PDI / JSON / DOT import-export paths."""

import pytest

from repro.io.dot import flow_to_dot, save_flow_dot
from repro.io.jsonflow import flow_from_json, flow_to_json, load_flow_json, save_flow_json
from repro.io.pdi import flow_from_pdi, flow_to_pdi, load_flow_pdi, save_flow_pdi
from repro.io.xlm import flow_from_xlm, flow_to_xlm, load_flow_xlm, save_flow_xlm
from repro.etl.operations import OperationKind


def _assert_same_flow(a, b):
    assert b.name == a.name
    assert b.structurally_equal(a)
    for op_id in a.operation_ids():
        original = a.operation(op_id)
        restored = b.operation(op_id)
        assert restored.kind is original.kind
        assert restored.output_schema == original.output_schema
        assert restored.config == original.config
        assert restored.properties.cost_per_tuple == pytest.approx(
            original.properties.cost_per_tuple
        )
        assert restored.properties.selectivity == pytest.approx(original.properties.selectivity)
    assert b.annotations == a.annotations


class TestJsonFormat:
    def test_round_trip(self, branching_flow):
        branching_flow.annotations["encryption"] = True
        restored = flow_from_json(flow_to_json(branching_flow))
        _assert_same_flow(branching_flow, restored)

    def test_file_round_trip(self, linear_flow, tmp_path):
        path = save_flow_json(linear_flow, tmp_path / "flow.json")
        assert path.exists()
        _assert_same_flow(linear_flow, load_flow_json(path))

    def test_invalid_document_rejected(self):
        with pytest.raises(ValueError):
            flow_from_json("[1, 2, 3]")


class TestXlmFormat:
    def test_round_trip(self, branching_flow):
        branching_flow.annotations["resource_tier"] = "large"
        restored = flow_from_xlm(flow_to_xlm(branching_flow))
        _assert_same_flow(branching_flow, restored)

    def test_round_trip_preserves_edge_schemas(self, linear_flow):
        restored = flow_from_xlm(flow_to_xlm(linear_flow))
        for edge in linear_flow.edges():
            assert restored.edge(edge.source, edge.target).schema == edge.schema

    def test_file_round_trip(self, small_purchases, tmp_path):
        path = save_flow_xlm(small_purchases, tmp_path / "purchases.xlm")
        restored = load_flow_xlm(path)
        _assert_same_flow(small_purchases, restored)

    def test_document_structure(self, linear_flow):
        text = flow_to_xlm(linear_flow)
        assert text.startswith("<?xml")
        assert "<design" in text
        assert "<node" in text
        assert "<edge" in text

    def test_non_xlm_document_rejected(self):
        with pytest.raises(ValueError, match="not an xLM document"):
            flow_from_xlm("<transformation></transformation>")

    def test_missing_nodes_rejected(self):
        with pytest.raises(ValueError, match="no <nodes>"):
            flow_from_xlm('<design name="x"></design>')


class TestPdiFormat:
    def test_round_trip_with_extension(self, branching_flow):
        branching_flow.annotations["schedule_frequency_per_day"] = 48.0
        restored = flow_from_pdi(flow_to_pdi(branching_flow))
        _assert_same_flow(branching_flow, restored)

    def test_file_round_trip(self, linear_flow, tmp_path):
        path = save_flow_pdi(linear_flow, tmp_path / "flow.ktr")
        _assert_same_flow(linear_flow, load_flow_pdi(path))

    def test_step_types_mapped(self, linear_flow):
        text = flow_to_pdi(linear_flow)
        assert "<transformation>" in text
        assert "TableInput" in text
        assert "TableOutput" in text
        assert "FilterRows" in text

    def test_plain_pdi_without_extension(self):
        text = """<?xml version="1.0"?>
        <transformation>
          <info><name>spoon_flow</name></info>
          <order>
            <hop><from>read_orders</from><to>filter_orders</to><enabled>Y</enabled></hop>
            <hop><from>filter_orders</from><to>write_orders</to><enabled>Y</enabled></hop>
            <hop><from>filter_orders</from><to>disabled_target</to><enabled>N</enabled></hop>
          </order>
          <step><name>read_orders</name><type>TableInput</type></step>
          <step><name>filter_orders</name><type>FilterRows</type></step>
          <step><name>write_orders</name><type>TableOutput</type></step>
          <step><name>disabled_target</name><type>Dummy</type></step>
        </transformation>
        """
        flow = flow_from_pdi(text)
        assert flow.name == "spoon_flow"
        assert flow.node_count == 4
        assert flow.edge_count == 2  # the disabled hop is skipped
        assert flow.operation("read_orders").kind is OperationKind.EXTRACT_TABLE
        assert flow.operation("filter_orders").kind is OperationKind.FILTER
        assert flow.operation("write_orders").kind is OperationKind.LOAD_TABLE

    def test_unknown_step_type_becomes_noop(self):
        text = """<transformation>
          <info><name>f</name></info>
          <step><name>mystery</name><type>SomeExoticStep</type></step>
        </transformation>"""
        flow = flow_from_pdi(text)
        assert flow.operation("mystery").kind is OperationKind.NOOP

    def test_non_pdi_document_rejected(self):
        with pytest.raises(ValueError, match="not a PDI"):
            flow_from_pdi("<design></design>")


class TestDotExport:
    def test_contains_every_node_and_edge(self, branching_flow):
        dot = flow_to_dot(branching_flow)
        assert dot.startswith("digraph")
        for op in branching_flow.operations():
            assert f'"{op.op_id}"' in dot
        for edge in branching_flow.edges():
            assert f'"{edge.source}" -> "{edge.target}"' in dot

    def test_save(self, linear_flow, tmp_path):
        path = save_flow_dot(linear_flow, tmp_path / "flow.dot")
        assert path.read_text().startswith("digraph")

    def test_escaping_of_quotes(self, linear_flow):
        op = linear_flow.operations()[0]
        op.name = 'quoted "name"'
        dot = flow_to_dot(linear_flow)
        assert '\\"name\\"' in dot


class TestCrossFormatConsistency:
    def test_xlm_and_pdi_and_json_agree(self, small_purchases):
        via_json = flow_from_json(flow_to_json(small_purchases))
        via_xlm = flow_from_xlm(flow_to_xlm(small_purchases))
        via_pdi = flow_from_pdi(flow_to_pdi(small_purchases))
        assert via_json.structurally_equal(via_xlm)
        assert via_xlm.structurally_equal(via_pdi)

    def test_imported_flow_is_plannable(self, small_purchases):
        from repro.core import Planner, ProcessingConfiguration

        restored = flow_from_xlm(flow_to_xlm(small_purchases))
        planner = Planner(
            configuration=ProcessingConfiguration(
                pattern_budget=1, max_points_per_pattern=1, simulation_runs=1
            )
        )
        result = planner.plan(restored)
        assert result.alternatives
