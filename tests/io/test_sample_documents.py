"""Tests for the bundled sample model documents under ``examples/data``."""

from pathlib import Path

import pytest

from repro.core import Planner, ProcessingConfiguration
from repro.etl.validation import is_valid
from repro.io.jsonflow import load_flow_json
from repro.io.pdi import load_flow_pdi
from repro.io.xlm import load_flow_xlm

DATA_DIR = Path(__file__).resolve().parents[2] / "examples" / "data"


@pytest.mark.skipif(not DATA_DIR.exists(), reason="sample documents not generated")
class TestSampleDocuments:
    def test_all_samples_present(self):
        names = {path.name for path in DATA_DIR.iterdir()}
        assert {"tpch_refresh.xlm", "s_purchases.xlm", "tpcds_sales.ktr", "s_purchases.json"} <= names

    def test_xlm_samples_import_as_valid_flows(self):
        tpch = load_flow_xlm(DATA_DIR / "tpch_refresh.xlm")
        purchases = load_flow_xlm(DATA_DIR / "s_purchases.xlm")
        assert is_valid(tpch)
        assert is_valid(purchases)
        assert tpch.node_count >= 25
        assert purchases.node_count == 7

    def test_pdi_sample_imports_as_valid_flow(self):
        tpcds = load_flow_pdi(DATA_DIR / "tpcds_sales.ktr")
        assert is_valid(tpcds)
        assert tpcds.node_count >= 28
        assert len(tpcds.sources()) >= 5

    def test_json_and_xlm_purchases_documents_agree(self):
        via_xlm = load_flow_xlm(DATA_DIR / "s_purchases.xlm")
        via_json = load_flow_json(DATA_DIR / "s_purchases.json")
        assert via_xlm.structurally_equal(via_json)

    def test_imported_sample_is_plannable(self):
        purchases = load_flow_xlm(DATA_DIR / "s_purchases.xlm")
        planner = Planner(
            configuration=ProcessingConfiguration(
                pattern_budget=1, max_points_per_pattern=1, simulation_runs=1
            )
        )
        result = planner.plan(purchases)
        assert result.alternatives
        assert result.skyline
