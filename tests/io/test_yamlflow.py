"""The YAML authoring DSL: round-trips, fixpoint, clean diagnostics."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.etl.operations import OperationKind
from repro.exec import FlowExecutor
from repro.io import flow_from_yaml, flow_to_yaml, load_flow_yaml, save_flow_yaml
from repro.workloads import purchases_flow, tpch_refresh_flow

EXAMPLE = Path(__file__).resolve().parents[2] / "examples" / "flow.yaml"

DOC = """
flow:
  name: orders
  nodes:
    extract_orders:
      kind: extract_table
      schema: [o_id:integer!, o_total:decimal, o_note:string]
      config: {rows: 200}
      properties: {null_rate: 0.1}
    drop_nulls: {kind: filter_nulls}
    split: {kind: split, config: {outputs: 2}}
    sink_a: {kind: load_table}
    sink_b: {kind: load_table}
  edges:
    - extract_orders >> drop_nulls >> split
    - {source: split, target: sink_a, label: even}
    - {source: split, target: sink_b, label: odd}
"""


def test_load_basic_document():
    flow = flow_from_yaml(DOC)
    assert flow.name == "orders"
    assert flow.node_count == 5
    assert flow.edge_count == 4
    extract = flow.operation("extract_orders")
    assert extract.kind is OperationKind.EXTRACT_TABLE
    assert extract.config["rows"] == 200
    assert extract.properties.null_rate == pytest.approx(0.1)
    schema = extract.output_schema
    assert [f.name for f in schema] == ["o_id", "o_total", "o_note"]
    assert schema.key_fields[0].name == "o_id"
    labels = {(e.source, e.target): e.label for e in flow.edges()}
    assert labels[("split", "sink_a")] == "even"
    assert labels[("split", "sink_b")] == "odd"


def test_dump_load_fixpoint():
    first = flow_to_yaml(flow_from_yaml(DOC))
    second = flow_to_yaml(flow_from_yaml(first))
    assert first == second


def test_builder_flows_round_trip_exactly():
    for flow in (tpch_refresh_flow(scale=0.02), purchases_flow(rows_per_source=300)):
        text = flow_to_yaml(flow)
        loaded = flow_from_yaml(text)
        assert loaded.to_dict()["operations"] == flow.to_dict()["operations"]
        assert loaded.to_dict()["edges"] == flow.to_dict()["edges"]
        assert flow_to_yaml(loaded) == text


def test_loaded_flow_executes():
    report = FlowExecutor(data_seed=7).execute(flow_from_yaml(DOC))
    assert set(report.statuses.values()) == {"ok"}
    assert report.rows_loaded > 0


def test_example_document_loads_and_executes():
    flow = load_flow_yaml(EXAMPLE)
    assert flow.name == "yaml_purchases"
    report = FlowExecutor(data_seed=7).execute(flow)
    assert report.rows_loaded > 0


def test_save_and_load_files(tmp_path):
    flow = flow_from_yaml(DOC)
    path = save_flow_yaml(flow, tmp_path / "orders.yaml")
    assert path.exists()
    assert flow_to_yaml(load_flow_yaml(path)) == flow_to_yaml(flow)


# ----------------------------------------------------------------------
# Diagnostics: ValueErrors with the document vocabulary, not tracebacks
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    ("document", "fragment"),
    [
        ("nodes: {}", "top-level 'flow' mapping"),
        ("flow: []", "'flow' entry must be a mapping"),
        ("flow:\n  nodes: {}", "at least one node"),
        ("flow:\n  nodes:\n    a: {kind: frobnicate}", "unknown operation kind"),
        ("flow:\n  nodes:\n    a: {kind: frobnicate}", "valid kinds"),
        ("flow:\n  nodes:\n    a: {kind: noop, shape: round}", "unknown entries"),
        ("flow:\n  nodes:\n    a: noop", "must be a mapping"),
        ("flow:\n  nodes:\n    a: {name: x}", "missing the required 'kind'"),
        (
            "flow:\n  nodes:\n    a: {kind: noop, properties: {speed: 9}}",
            "unknown properties",
        ),
        (
            "flow:\n  nodes:\n    a: {kind: extract_table, schema: [broken]}",
            "malformed schema field",
        ),
        (
            "flow:\n  nodes:\n    a: {kind: extract_table, schema: ['x:blorb']}",
            "unknown data type",
        ),
        ("flow:\n  nodes:\n    a: {kind: noop}\n  edges: [a >> b]", "undeclared"),
        ("flow:\n  nodes:\n    a: {kind: noop}\n  edges: [a >>]", "malformed edge"),
        ("flow:\n  nodes:\n    a: {kind: noop}\n  edges: [{source: a}]", "malformed edge"),
        (
            "flow:\n  nodes:\n    a: {kind: noop}\n    b: {kind: noop}\n"
            "  edges: [a >> b, b >> a]",
            "cycle",
        ),
        (
            "flow:\n  nodes:\n    a: {kind: noop}\n  edges: [a >> a]",
            "self-loop",
        ),
        ("flow:\n  nodes:\n    a: {kind: noop}\n  extras: {}", "unknown entries"),
        ("flow: {nodes: {a: {kind: noop}}, edges: 7}", "must be a list"),
        (":\n  - not yaml: [", "invalid YAML"),
    ],
)
def test_malformed_documents_raise_value_errors(document: str, fragment: str):
    with pytest.raises(ValueError, match="(?s)" + fragment.replace("'", ".")):
        flow_from_yaml(document)


def test_chain_edges_expand_pairwise():
    flow = flow_from_yaml(
        "flow:\n"
        "  nodes:\n"
        "    a: {kind: extract_table}\n"
        "    b: {kind: filter_nulls}\n"
        "    c: {kind: deduplicate}\n"
        "    d: {kind: load_table}\n"
        "  edges: [a >> b >> c >> d]\n"
    )
    assert [(e.source, e.target) for e in flow.edges()] == [
        ("a", "b"),
        ("b", "c"),
        ("c", "d"),
    ]
