"""Tests for the text-based visualisation backends (Figs. 1, 4, 5, 6)."""

import pytest

from repro.core import Planner, ProcessingConfiguration
from repro.core.session import RedesignSession
from repro.patterns.registry import figure6_palette
from repro.quality.framework import QualityCharacteristic, default_registry
from repro.viz.bars import build_bar_data, render_bar_chart, render_drilldown
from repro.viz.report import planning_report, session_report
from repro.viz.scatter import build_scatter_data, render_ascii_scatter, scatter_to_csv
from repro.viz.tables import measures_table, palette_table, render_table


@pytest.fixture(scope="module")
def planning_result():
    from repro.workloads import purchases_flow

    planner = Planner(
        configuration=ProcessingConfiguration(
            pattern_budget=1, max_points_per_pattern=2, simulation_runs=1
        )
    )
    return planner.plan(purchases_flow(rows_per_source=1_000))


class TestScatter:
    def test_one_point_per_alternative(self, planning_result):
        points = build_scatter_data(planning_result)
        assert len(points) == len(planning_result.alternatives)
        assert sum(1 for p in points if p.on_skyline) == len(planning_result.skyline_indices)
        for point in points:
            assert len(point.scores) == len(planning_result.characteristics)

    def test_ascii_plot_contains_markers_and_labels(self, planning_result):
        points = build_scatter_data(planning_result)
        text = render_ascii_scatter(points, planning_result.characteristics)
        assert "*" in text
        assert "Performance" in text
        assert text.endswith("\n")

    def test_ascii_plot_skyline_only(self, planning_result):
        points = build_scatter_data(planning_result)
        text = render_ascii_scatter(points, planning_result.characteristics, skyline_only=True)
        canvas_rows = [line for line in text.splitlines() if line.strip().startswith("|")]
        assert canvas_rows
        assert all("." not in row for row in canvas_rows)  # no dominated markers plotted

    def test_ascii_plot_empty(self):
        assert "no alternative flows" in render_ascii_scatter([], ())

    def test_ascii_plot_small_canvas_rejected(self, planning_result):
        points = build_scatter_data(planning_result)
        with pytest.raises(ValueError):
            render_ascii_scatter(points, planning_result.characteristics, width=5, height=2)

    def test_csv_export(self, planning_result):
        points = build_scatter_data(planning_result)
        csv = scatter_to_csv(points, planning_result.characteristics)
        lines = csv.strip().splitlines()
        assert lines[0].startswith("label,on_skyline,patterns")
        assert len(lines) == len(points) + 1
        assert "performance" in lines[0]


class TestBars:
    def test_bar_data_per_characteristic(self, planning_result):
        comparison = planning_result.comparison(planning_result.skyline[0])
        rows = build_bar_data(comparison)
        assert {row["characteristic"] for row in rows} == {
            c.value for c in comparison.characteristic_changes
        }
        for row in rows:
            assert isinstance(row["relative_change"], float)
            assert isinstance(row["detail_measures"], list)

    def test_render_bar_chart(self, planning_result):
        comparison = planning_result.comparison(planning_result.skyline[0])
        text = render_bar_chart(comparison)
        assert "Relative change of measures" in text
        assert "%" in text
        for characteristic in comparison.characteristic_changes:
            assert characteristic.label in text

    def test_render_drilldown(self, planning_result):
        comparison = planning_result.comparison(planning_result.skyline[0])
        text = render_drilldown(comparison, QualityCharacteristic.PERFORMANCE)
        assert "process_cycle_time_ms" in text

    def test_render_drilldown_empty_characteristic(self, planning_result):
        comparison = planning_result.comparison(planning_result.skyline[0])
        text = render_drilldown(comparison, QualityCharacteristic.SECURITY)
        assert "no detailed measures" in text


class TestTables:
    def test_measures_table_matches_fig1_content(self):
        rows = measures_table(default_registry())
        rendered = render_table(rows, columns=["characteristic", "measure"])
        assert "Process cycle time" in rendered
        assert "Average latency per tuple" in rendered
        assert "longest path" in rendered
        assert "# of merge elements" in rendered

    def test_palette_table_matches_fig6(self):
        rows = palette_table(figure6_palette())
        rendered = render_table(rows)
        for name in (
            "RemoveDuplicateEntries",
            "FilterNullValues",
            "CrosscheckSources",
            "ParallelizeTask",
            "AddCheckpoint",
        ):
            assert name in rendered
        assert "Data Quality" in rendered and "Performance" in rendered and "Reliability" in rendered

    def test_render_table_empty(self):
        assert render_table([]) == "(empty table)\n"

    def test_render_table_column_selection(self):
        rows = [{"a": 1, "b": 2}, {"a": 3, "b": 4}]
        rendered = render_table(rows, columns=["b"])
        assert "a" not in rendered.splitlines()[0]


class TestReports:
    def test_planning_report(self, planning_result):
        text = planning_report(planning_result)
        assert "Planning run on initial flow" in text
        assert "Skyline" in text
        assert "skyline size" in text

    def test_session_report(self):
        from repro.workloads import purchases_flow

        session = RedesignSession(
            purchases_flow(rows_per_source=500),
            configuration=ProcessingConfiguration(
                pattern_budget=1, max_points_per_pattern=1, simulation_runs=1
            ),
        )
        session.run(iterations=1)
        text = session_report(session)
        assert "Iteration 1" in text
        assert "Selected:" in text
