"""Cache tiers wired through the planner, session and evaluator pool.

The acceptance bar of the subsystem: every cache tier produces
byte-identical planning results (property-tested over seeded random
flows), defaults reproduce the memory-only behaviour, two planners can
share one ``cache_dir``, and the process backend's per-worker estimator
path agrees with sequential evaluation while still writing profiles
back to disk on pool teardown.
"""

from __future__ import annotations

import pytest

from repro.cache import DiskProfileCache, ProfileCache, TieredProfileCache
from repro.core import Planner, ProcessingConfiguration, RedesignSession
from repro.workloads import random_flow
from repro.workloads.generator import RandomFlowConfig


class TestConfigurationValidation:
    def test_defaults_select_the_memory_tier(self, make_config):
        planner = Planner(configuration=make_config())
        assert isinstance(planner.profile_cache, ProfileCache)

    def test_disk_and_tiered_require_cache_dir(self):
        with pytest.raises(ValueError, match="requires a cache_dir"):
            ProcessingConfiguration(cache_tier="disk")
        with pytest.raises(ValueError, match="requires a cache_dir"):
            ProcessingConfiguration(cache_tier="tiered")

    def test_unknown_tier_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown cache_tier"):
            ProcessingConfiguration(cache_tier="redis", cache_dir=str(tmp_path))

    def test_cache_max_bytes_needs_a_disk_tier(self, tmp_path):
        with pytest.raises(ValueError, match="cache_max_bytes"):
            ProcessingConfiguration(cache_max_bytes=1 << 20)
        with pytest.raises(ValueError, match="cache_max_bytes"):
            ProcessingConfiguration(
                cache_tier="disk", cache_dir=str(tmp_path), cache_max_bytes=0
            )
        # valid combination passes
        config = ProcessingConfiguration(
            cache_tier="tiered", cache_dir=str(tmp_path), cache_max_bytes=1 << 20
        )
        assert config.cache_max_bytes == 1 << 20

    def test_planner_builds_the_configured_tier(self, make_config, tmp_path):
        disk = Planner(
            configuration=make_config(cache_tier="disk", cache_dir=str(tmp_path / "d"))
        )
        assert isinstance(disk.profile_cache, DiskProfileCache)
        tiered = Planner(
            configuration=make_config(cache_tier="tiered", cache_dir=str(tmp_path / "t"))
        )
        assert isinstance(tiered.profile_cache, TieredProfileCache)
        # both estimators (full + screening) share the one backend
        assert tiered.estimator.cache is tiered.profile_cache
        assert tiered.screening_estimator.cache is tiered.profile_cache


class TestTierEquivalence:
    @pytest.mark.parametrize("flow_seed", [11, 29, 53])
    def test_all_tiers_plan_byte_identically(self, make_config, tmp_path, flow_seed):
        """Property: cache tiers -- including the network one -- trade
        wall-clock, never results."""
        from repro.service import CacheServer

        flow = random_flow(RandomFlowConfig(operations=6, rows_per_source=500, seed=flow_seed))
        with CacheServer(DiskProfileCache(tmp_path / f"srv{flow_seed}")) as server:
            fingerprints = set()
            for name, extra in {
                "memory": {},
                "disk": dict(cache_tier="disk", cache_dir=str(tmp_path / f"d{flow_seed}")),
                "tiered": dict(cache_tier="tiered", cache_dir=str(tmp_path / f"t{flow_seed}")),
                "http": dict(cache_tier="http", cache_url=server.url),
                "uncached": dict(cache_profiles=False),
            }.items():
                result = Planner(configuration=make_config(**extra)).plan(flow)
                fingerprints.add(result.fingerprint())
            assert len(fingerprints) == 1
            # the http arm really went through the server
            assert server.stats.lookups > 0

    def test_warm_disk_rerun_is_identical_and_all_hits(self, make_config, tmp_path, linear_flow):
        config = make_config(cache_tier="tiered", cache_dir=str(tmp_path))
        cold = Planner(configuration=config)
        cold_result = cold.plan(linear_flow)
        warm = Planner(configuration=config)  # fresh process stand-in: empty memory tier
        warm_result = warm.plan(linear_flow)
        assert warm_result.fingerprint() == cold_result.fingerprint()
        tiers = warm.profile_cache.tier_stats()
        assert tiers["overall"]["misses"] == 0
        assert tiers["disk"]["hits"] == tiers["overall"]["hits"]


class TestSharedCacheDir:
    def test_two_planners_share_one_cache_dir(self, make_config, tmp_path, linear_flow):
        """The 'parallel sessions' scenario: planner B reuses A's profiles."""
        config = make_config(cache_tier="disk", cache_dir=str(tmp_path))
        a = Planner(configuration=config)
        b = Planner(configuration=config)
        result_a = a.plan(linear_flow)
        result_b = b.plan(linear_flow)
        assert result_a.fingerprint() == result_b.fingerprint()
        assert b.profile_cache.stats.misses == 0
        assert b.profile_cache.stats.hits == b.profile_cache.stats.lookups

    def test_eviction_under_cache_max_bytes_during_planning(
        self, make_config, tmp_path, linear_flow
    ):
        probe = Planner(
            configuration=make_config(cache_tier="disk", cache_dir=str(tmp_path / "probe"))
        )
        reference = probe.plan(linear_flow)
        entry_bytes = probe.profile_cache.size_bytes() // max(len(probe.profile_cache), 1)
        capped_config = make_config(
            cache_tier="disk",
            cache_dir=str(tmp_path / "capped"),
            cache_max_bytes=entry_bytes * 2,
        )
        capped = Planner(configuration=capped_config)
        capped_result = capped.plan(linear_flow)
        # the cap squeezed the store without changing any result
        assert capped_result.fingerprint() == reference.fingerprint()
        assert capped.profile_cache.stats.evictions > 0
        assert capped.profile_cache.size_bytes() <= capped_config.cache_max_bytes


class TestSessionCacheStats:
    def test_session_stats_include_the_tier_breakdown(self, make_config, tmp_path, linear_flow):
        session = RedesignSession(
            linear_flow,
            configuration=make_config(cache_tier="tiered", cache_dir=str(tmp_path)),
        )
        session.iterate()
        stats = session.cache_stats()
        assert stats["lookups"] > 0
        assert set(stats["tiers"]) == {"overall", "memory", "disk"}
        assert stats["tiers"]["overall"]["lookups"] == stats["lookups"]

    def test_memory_session_stats_keep_the_flat_shape(self, make_config, linear_flow):
        session = RedesignSession(linear_flow, configuration=make_config())
        session.iterate()
        stats = session.cache_stats()
        assert stats["lookups"] > 0
        assert set(stats["tiers"]) == {"memory"}

    def test_disabled_cache_yields_empty_stats(self, make_config, linear_flow):
        session = RedesignSession(
            linear_flow, configuration=make_config(cache_profiles=False)
        )
        session.iterate()
        assert session.cache_stats() == {}


class TestProcessBackendPool:
    def test_process_pool_matches_sequential_and_writes_back(
        self, make_config, tmp_path, linear_flow
    ):
        """Per-worker estimator pool: same results, disk populated on teardown."""
        sequential = Planner(configuration=make_config()).plan(linear_flow)
        pooled_config = make_config(
            cache_tier="tiered",
            cache_dir=str(tmp_path),
            parallel_workers=2,
            backend="process",
        )
        pooled_planner = Planner(configuration=pooled_config)
        pooled = pooled_planner.plan(linear_flow)
        assert pooled.fingerprint() == sequential.fingerprint()
        # the parent's batched write-back published every profile on teardown
        disk = pooled_planner.profile_cache.disk
        assert not disk.batch_writes, "batching must be restored after the stream"
        assert len(disk) == pooled_planner.profile_cache.stats.misses
        # a fresh planner is served entirely from the warm directory
        warm = Planner(configuration=pooled_config)
        warm_result = warm.plan(linear_flow)
        assert warm_result.fingerprint() == sequential.fingerprint()
        assert warm.profile_cache.stats.misses == 0

    def test_worker_reads_through_a_prewarmed_directory(
        self, make_config, tmp_path, linear_flow
    ):
        """Workers open their own handle onto cache_dir (read-through path)."""
        from repro.core.evaluator import _init_worker, _evaluate_one_pooled
        import repro.core.evaluator as evaluator_module

        config = make_config(cache_tier="tiered", cache_dir=str(tmp_path))
        seeder = Planner(configuration=config)
        seeder.plan(linear_flow)  # populates the directory

        fresh = Planner(configuration=config)
        alternatives = fresh.generate_alternatives(linear_flow)
        # simulate the worker side in-process: initializer + pooled task
        import pickle

        worker_estimator = pickle.loads(pickle.dumps(fresh.estimator))
        original = evaluator_module._WORKER_ESTIMATOR
        try:
            _init_worker(worker_estimator)
            assert isinstance(worker_estimator.cache, DiskProfileCache)
            profile = _evaluate_one_pooled(alternatives[0])
            assert worker_estimator.cache.stats.hits == 1, "served from the warm dir"
            assert profile.values  # a real, fully populated profile
        finally:
            evaluator_module._WORKER_ESTIMATOR = original

    def test_memory_only_worker_drops_the_entry_less_cache(self, make_config, linear_flow):
        from repro.core.evaluator import _init_worker
        import repro.core.evaluator as evaluator_module
        import pickle

        planner = Planner(configuration=make_config())  # memory tier
        worker_estimator = pickle.loads(pickle.dumps(planner.estimator))
        original = evaluator_module._WORKER_ESTIMATOR
        try:
            _init_worker(worker_estimator)
            assert worker_estimator.cache is None
        finally:
            evaluator_module._WORKER_ESTIMATOR = original
