"""Unit tests of the disk-backed profile cache: happy path and failure modes.

The disk tier's contract is "a damaged or stale cache degrades to a cold
cache, never to wrong results": corrupted entries, entries written by an
incompatible schema version, concurrent writers and size-cap eviction
must all surface as misses/evictions, not exceptions or stale profiles.
"""

from __future__ import annotations

import os
import pickle
import threading

import pytest

from repro.cache import CACHE_SCHEMA_VERSION, CacheStats, DiskProfileCache
from repro.cache.disk import _ENTRY_SUFFIX
from repro.quality.composite import QualityProfile


def _profile(name: str = "p", **values) -> QualityProfile:
    return QualityProfile(flow_name=name, values=dict(values))


def _entry_files(cache: DiskProfileCache):
    return sorted(cache.cache_dir.glob(f"*{_ENTRY_SUFFIX}"))


class TestDiskCacheBasics:
    def test_get_put_and_stats(self, tmp_path):
        cache = DiskProfileCache(tmp_path)
        assert cache.get(("k",)) is None
        cache.put(("k",), _profile())
        hit = cache.get(("k",))
        assert hit is not None and hit.flow_name == "p"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.lookups == 2
        assert len(cache) == 1
        assert ("k",) in cache
        assert ("other",) not in cache

    def test_entries_persist_across_instances(self, tmp_path):
        DiskProfileCache(tmp_path).put(("k",), _profile("persisted"))
        reopened = DiskProfileCache(tmp_path)
        hit = reopened.get(("k",))
        assert hit is not None and hit.flow_name == "persisted"
        assert reopened.stats.hits == 1

    def test_atomic_publish_leaves_no_temp_files(self, tmp_path):
        cache = DiskProfileCache(tmp_path)
        for i in range(5):
            cache.put((f"k{i}",), _profile(f"p{i}"))
        leftovers = [p for p in tmp_path.iterdir() if p.name.endswith(".tmp")]
        assert leftovers == []
        assert len(_entry_files(cache)) == 5

    def test_clear_drops_entries_and_stats(self, tmp_path):
        cache = DiskProfileCache(tmp_path)
        cache.put(("k",), _profile())
        cache.get(("k",))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.lookups == 0
        assert _entry_files(cache) == []

    def test_invalid_max_bytes(self, tmp_path):
        with pytest.raises(ValueError):
            DiskProfileCache(tmp_path, max_bytes=0)

    def test_size_bytes_tracks_entries(self, tmp_path):
        cache = DiskProfileCache(tmp_path)
        assert cache.size_bytes() == 0
        cache.put(("k",), _profile())
        assert cache.size_bytes() > 0

    def test_pickles_as_a_handle_onto_the_same_directory(self, tmp_path):
        cache = DiskProfileCache(tmp_path, max_bytes=1 << 20)
        cache.put(("k",), _profile("shared"))
        cache.get(("k",))
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.cache_dir == cache.cache_dir
        assert clone.max_bytes == 1 << 20
        # stats round-trip, and the clone reads entries the original wrote
        assert clone.stats.hits == 1
        hit = clone.get(("k",))
        assert hit is not None and hit.flow_name == "shared"


class TestDiskCacheFailureModes:
    def test_corrupted_entry_is_a_miss_and_removed(self, tmp_path):
        cache = DiskProfileCache(tmp_path)
        cache.put(("k",), _profile())
        (path,) = _entry_files(cache)
        path.write_bytes(b"\x00garbage not pickle")
        assert cache.get(("k",)) is None
        assert cache.stats.invalid == 1
        assert cache.stats.misses == 1
        assert not path.exists(), "the damaged entry must be dropped"
        # the cache heals: a re-put works and is readable again
        cache.put(("k",), _profile("healed"))
        assert cache.get(("k",)).flow_name == "healed"

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = DiskProfileCache(tmp_path)
        cache.put(("k",), _profile())
        (path,) = _entry_files(cache)
        path.write_bytes(path.read_bytes()[:10])
        assert cache.get(("k",)) is None
        assert cache.stats.invalid == 1

    def test_wrong_payload_shape_is_a_miss(self, tmp_path):
        cache = DiskProfileCache(tmp_path)
        cache.put(("k",), _profile())
        (path,) = _entry_files(cache)
        path.write_bytes(pickle.dumps(["not", "a", "payload", "dict"]))
        assert cache.get(("k",)) is None
        assert cache.stats.invalid == 1

    def test_version_mismatch_is_a_miss_and_removed(self, tmp_path):
        cache = DiskProfileCache(tmp_path)
        cache.put(("k",), _profile())
        (path,) = _entry_files(cache)
        payload = pickle.loads(path.read_bytes())
        payload["version"] = CACHE_SCHEMA_VERSION + 1
        path.write_bytes(pickle.dumps(payload))
        assert cache.get(("k",)) is None
        assert cache.stats.invalid == 1
        assert not path.exists(), "a stale-schema entry must be dropped"

    def test_key_mismatch_is_a_miss(self, tmp_path):
        """A (hypothetical) hash collision must never serve the wrong profile."""
        cache = DiskProfileCache(tmp_path)
        cache.put(("k",), _profile())
        (path,) = _entry_files(cache)
        payload = pickle.loads(path.read_bytes())
        payload["key"] = ("some", "other", "key")
        path.write_bytes(pickle.dumps(payload))
        assert cache.get(("k",)) is None
        assert cache.stats.invalid == 1

    def test_schema_version_partitions_the_file_namespace(self, tmp_path, monkeypatch):
        """Entries written under one schema version are invisible to another."""
        import repro.cache.disk as disk_module

        cache = DiskProfileCache(tmp_path)
        cache.put(("k",), _profile())
        monkeypatch.setattr(disk_module, "CACHE_SCHEMA_VERSION", CACHE_SCHEMA_VERSION + 1)
        bumped = DiskProfileCache(tmp_path)
        assert bumped.get(("k",)) is None  # different hash, plain miss
        assert bumped.stats.misses == 1


class TestDiskCacheEviction:
    def test_evicts_least_recently_used_under_cap(self, tmp_path):
        cache = DiskProfileCache(tmp_path)  # uncapped while seeding
        for i in range(4):
            cache.put((f"k{i}",), _profile(f"p{i}"))
        entry_size = cache.size_bytes() // 4
        # age the entries explicitly (same-second writes share mtimes)
        for age, key in enumerate(["k0", "k1", "k2", "k3"]):
            path = cache._path((key,))
            os.utime(path, (1_000_000 + age, 1_000_000 + age))
        # a hit refreshes k0, making k1 the least recently used
        assert cache.get(("k0",)) is not None
        cache.max_bytes = entry_size * 3
        cache.put(("k4",), _profile("p4"))
        assert cache.stats.evictions >= 1
        assert ("k1",) not in cache, "the least-recently-used entry goes first"
        assert ("k0",) in cache, "the freshly hit entry survives"
        assert ("k4",) in cache, "the newest entry survives"
        assert cache.size_bytes() <= cache.max_bytes

    def test_uncapped_cache_never_evicts(self, tmp_path):
        cache = DiskProfileCache(tmp_path)
        for i in range(20):
            cache.put((f"k{i}",), _profile(f"p{i}"))
        assert cache.stats.evictions == 0
        assert len(cache) == 20


class TestDiskCacheBatching:
    def test_batched_puts_are_visible_but_not_published(self, tmp_path):
        cache = DiskProfileCache(tmp_path, batch_writes=True)
        cache.put(("k",), _profile("buffered"))
        assert ("k",) in cache
        assert len(cache) == 1
        assert cache.get(("k",)).flow_name == "buffered"  # served from the buffer
        assert _entry_files(cache) == []  # nothing on disk yet
        other = DiskProfileCache(tmp_path)
        assert other.get(("k",)) is None  # other handles cannot see the buffer

    def test_flush_publishes_the_buffer(self, tmp_path):
        cache = DiskProfileCache(tmp_path, batch_writes=True)
        for i in range(3):
            cache.put((f"k{i}",), _profile(f"p{i}"))
        cache.flush()
        assert len(_entry_files(cache)) == 3
        other = DiskProfileCache(tmp_path)
        assert other.get(("k1",)).flow_name == "p1"
        cache.flush()  # idempotent on an empty buffer

    def test_flush_applies_the_size_cap_once(self, tmp_path):
        seed = DiskProfileCache(tmp_path)
        seed.put(("probe",), _profile())
        entry_size = seed.size_bytes()
        seed.clear()
        cache = DiskProfileCache(tmp_path, max_bytes=entry_size * 2, batch_writes=True)
        for i in range(5):
            cache.put((f"k{i}",), _profile(f"p{i}"))
        assert cache.stats.evictions == 0  # nothing published yet
        cache.flush()
        assert cache.size_bytes() <= cache.max_bytes
        assert cache.stats.evictions >= 3


class TestDiskCacheConcurrency:
    def test_concurrent_writers_and_readers_one_directory(self, tmp_path):
        """Two handles (as two planners would hold) hammer one cache_dir."""
        writers = [DiskProfileCache(tmp_path) for _ in range(2)]
        errors: list[Exception] = []

        def hammer(cache: DiskProfileCache, worker: int) -> None:
            try:
                for i in range(50):
                    key = (f"k{i % 10}",)
                    cache.put(key, _profile(f"w{worker}-{i}"))
                    hit = cache.get(key)
                    assert hit is not None  # my own write (or the peer's) is always readable
                    assert hit.flow_name.startswith("w")
            except Exception as exc:  # pragma: no cover - only on failure
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(cache, n))
            for n, cache in enumerate(writers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        # last-writer-wins left exactly one valid entry per key
        survivor = DiskProfileCache(tmp_path)
        assert len(survivor) == 10
        for i in range(10):
            assert survivor.get((f"k{i}",)) is not None
        assert survivor.stats.invalid == 0


class TestCacheStatsInvalidCounter:
    def test_as_dict_includes_invalid(self):
        stats = CacheStats(hits=3, misses=1, invalid=2)
        snapshot = stats.as_dict()
        assert snapshot["invalid"] == 2
        assert snapshot["lookups"] == 4


class TestGetMany:
    def test_get_many_matches_sequential_gets_and_counts_once_per_key(self, tmp_path):
        cache = DiskProfileCache(tmp_path)
        cache.put(("a",), _profile("pa"))
        cache.put(("b",), _profile("pb"))
        results = cache.get_many([("a",), ("missing",), ("b",)])
        assert [r.flow_name if r else None for r in results] == ["pa", None, "pb"]
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1

    def test_get_many_serves_the_pending_buffer(self, tmp_path):
        cache = DiskProfileCache(tmp_path, batch_writes=True)
        cache.put(("buffered",), _profile("pending"))
        results = cache.get_many([("buffered",), ("absent",)])
        assert results[0].flow_name == "pending"
        assert results[1] is None


class TestGetByDigest:
    def test_round_trips_through_the_file_name_digest(self, tmp_path):
        from repro.cache import key_digest

        cache = DiskProfileCache(tmp_path)
        key = ("flow", ("nested", 1, 2.5, None, True))
        cache.put(key, _profile("digested"))
        entry = cache.get_by_digest(key_digest(key))
        assert entry is not None
        stored_key, profile = entry
        assert stored_key == key
        assert profile.flow_name == "digested"
        assert cache.stats.hits == 1

    def test_unknown_digest_is_a_miss(self, tmp_path):
        cache = DiskProfileCache(tmp_path)
        assert cache.get_by_digest("0" * 64) is None
        assert cache.stats.misses == 1

    def test_version_mismatch_is_invalid_and_dropped(self, tmp_path):
        from repro.cache import key_digest

        cache = DiskProfileCache(tmp_path)
        key = ("stale",)
        cache.put(key, _profile())
        path = cache._path(key)
        payload = pickle.loads(path.read_bytes())
        payload["version"] = CACHE_SCHEMA_VERSION + 999
        path.write_bytes(pickle.dumps(payload))
        assert cache.get_by_digest(key_digest(key)) is None
        assert cache.stats.invalid == 1
        assert not path.exists(), "stale entries are dropped, not served"

    def test_pending_buffer_is_searched_first(self, tmp_path):
        from repro.cache import key_digest

        cache = DiskProfileCache(tmp_path, batch_writes=True)
        key = ("buffered",)
        cache.put(key, _profile("unpublished"))
        entry = cache.get_by_digest(key_digest(key))
        assert entry is not None and entry[1].flow_name == "unpublished"


class TestBackgroundEviction:
    def _capped_cache(self, tmp_path, entries: int = 5):
        probe = DiskProfileCache(tmp_path / "probe")
        probe.put(("probe",), _profile())
        entry_size = probe.size_bytes()
        cache = DiskProfileCache(tmp_path / "store", max_bytes=entry_size * 2)
        return cache, entries

    def test_sweeper_moves_eviction_off_the_write_path(self, tmp_path):
        cache, entries = self._capped_cache(tmp_path)
        cache.start_background_eviction(interval=3600.0)  # never fires in-test
        try:
            for i in range(entries):
                cache.put((f"k{i}",), _profile(f"p{i}"))
            # the write path no longer sweeps: the store exceeds the cap
            assert cache.size_bytes() > cache.max_bytes
            assert cache.stats.evictions == 0
        finally:
            cache.stop_background_eviction()  # final sweep restores the cap
        assert cache.size_bytes() <= cache.max_bytes
        assert cache.stats.evictions >= 1

    def test_sweeper_thread_eventually_sweeps(self, tmp_path):
        import time

        cache, entries = self._capped_cache(tmp_path)
        cache.start_background_eviction(interval=0.02)
        try:
            for i in range(entries):
                cache.put((f"k{i}",), _profile(f"p{i}"))
            deadline = time.monotonic() + 5.0
            while cache.size_bytes() > cache.max_bytes:
                assert time.monotonic() < deadline, "sweeper never caught up"
                time.sleep(0.01)
        finally:
            cache.stop_background_eviction(final_sweep=False)
        assert cache.stats.evictions >= 1

    def test_inline_sweep_restored_after_stop(self, tmp_path):
        cache, entries = self._capped_cache(tmp_path)
        cache.start_background_eviction(interval=3600.0)
        cache.stop_background_eviction()
        for i in range(entries):
            cache.put((f"k{i}",), _profile(f"p{i}"))
        assert cache.size_bytes() <= cache.max_bytes  # in-line sweeping again

    def test_double_start_rejected_and_interval_validated(self, tmp_path):
        cache = DiskProfileCache(tmp_path)
        with pytest.raises(ValueError):
            cache.start_background_eviction(interval=0)
        cache.start_background_eviction(interval=3600.0)
        try:
            with pytest.raises(RuntimeError):
                cache.start_background_eviction(interval=3600.0)
        finally:
            cache.stop_background_eviction()
        cache.start_background_eviction(interval=3600.0)  # restartable after stop
        cache.stop_background_eviction()
