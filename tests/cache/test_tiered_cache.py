"""Unit tests of the memory-over-disk composite cache tier."""

from __future__ import annotations

import pickle

from repro.cache import (
    DiskProfileCache,
    ProfileCache,
    TieredProfileCache,
    build_profile_cache,
)
from repro.quality.composite import QualityProfile


def _profile(name: str = "p") -> QualityProfile:
    return QualityProfile(flow_name=name)


def _tiered(tmp_path, **disk_kwargs) -> TieredProfileCache:
    return TieredProfileCache(ProfileCache(), DiskProfileCache(tmp_path, **disk_kwargs))


class TestTieredLookup:
    def test_write_through_and_memory_hit(self, tmp_path):
        cache = _tiered(tmp_path)
        cache.put(("k",), _profile())
        assert cache.get(("k",)) is not None
        # the memory tier answered; disk was never consulted for the get
        assert cache.memory.stats.hits == 1
        assert cache.disk.stats.lookups == 0
        # but the entry was written through to disk
        assert ("k",) in cache.disk

    def test_disk_hit_is_promoted_to_memory(self, tmp_path):
        DiskProfileCache(tmp_path).put(("k",), _profile("warm"))
        cache = _tiered(tmp_path)  # fresh memory tier, warm disk
        first = cache.get(("k",))
        assert first is not None and first.flow_name == "warm"
        assert cache.memory.stats.misses == 1
        assert cache.disk.stats.hits == 1
        # the promotion makes the second lookup a pure memory hit
        assert cache.get(("k",)) is not None
        assert cache.memory.stats.hits == 1
        assert cache.disk.stats.lookups == 1

    def test_logical_stats_count_once_per_lookup(self, tmp_path):
        DiskProfileCache(tmp_path).put(("warm",), _profile())
        cache = _tiered(tmp_path)
        cache.get(("warm",))  # disk hit
        cache.put(("new",), _profile())
        cache.get(("new",))  # memory hit
        cache.get(("absent",))  # miss everywhere
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1
        assert cache.stats.lookups == 3

    def test_contains_and_len(self, tmp_path):
        cache = _tiered(tmp_path)
        cache.put(("k",), _profile())
        assert ("k",) in cache
        assert ("absent",) not in cache
        assert len(cache) == 1


class TestTieredMaintenance:
    def test_flush_publishes_the_disk_buffer(self, tmp_path):
        cache = _tiered(tmp_path, batch_writes=True)
        cache.put(("k",), _profile("buffered"))
        assert DiskProfileCache(tmp_path).get(("k",)) is None  # not published yet
        cache.flush()
        assert DiskProfileCache(tmp_path).get(("k",)).flow_name == "buffered"

    def test_clear_resets_both_tiers_and_all_stats(self, tmp_path):
        cache = _tiered(tmp_path)
        cache.put(("k",), _profile())
        cache.get(("k",))
        cache.get(("absent",))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.lookups == 0
        assert cache.memory.stats.lookups == 0
        assert cache.disk.stats.lookups == 0

    def test_tier_stats_shape(self, tmp_path):
        cache = _tiered(tmp_path)
        cache.put(("k",), _profile())
        cache.get(("k",))
        tiers = cache.tier_stats()
        assert set(tiers) == {"overall", "memory", "disk"}
        assert tiers["overall"]["hits"] == 1
        for snapshot in tiers.values():
            assert {"hits", "misses", "evictions", "invalid", "lookups", "hit_rate"} <= set(
                snapshot
            )

    def test_single_tier_stats_shapes(self, tmp_path):
        assert set(ProfileCache().tier_stats()) == {"memory"}
        assert set(DiskProfileCache(tmp_path).tier_stats()) == {"disk"}

    def test_pickles_to_an_entry_less_memory_tier_and_a_disk_handle(self, tmp_path):
        cache = _tiered(tmp_path)
        cache.put(("k",), _profile("shared"))
        clone = pickle.loads(pickle.dumps(cache))
        assert len(clone.memory) == 0  # memory entries never cross the boundary
        hit = clone.get(("k",))  # ...but the disk handle still reads them
        assert hit is not None and hit.flow_name == "shared"


class TestBuildProfileCache:
    def test_memory_tier_ignores_other_knobs(self):
        cache = build_profile_cache("memory")
        assert isinstance(cache, ProfileCache)

    def test_disk_and_tiered_tiers(self, tmp_path):
        disk = build_profile_cache("disk", cache_dir=tmp_path / "d", max_bytes=1 << 20)
        assert isinstance(disk, DiskProfileCache)
        assert disk.max_bytes == 1 << 20
        tiered = build_profile_cache("tiered", cache_dir=tmp_path / "t")
        assert isinstance(tiered, TieredProfileCache)

    def test_rejects_bad_combinations(self, tmp_path):
        import pytest

        with pytest.raises(ValueError):
            build_profile_cache("disk")  # no cache_dir
        with pytest.raises(ValueError):
            build_profile_cache("redis", cache_dir=tmp_path)


class TestTieredGetMany:
    def test_batched_lookup_promotes_disk_hits_and_counts_logically(self, tmp_path):
        cache = _tiered(tmp_path)
        cache.put(("a",), _profile("pa"))
        cache.put(("b",), _profile("pb"))
        cache.memory.clear()  # simulate a fresh process: disk-only warmth
        results = cache.get_many([("a",), ("gone",), ("b",)])
        assert [r.flow_name if r else None for r in results] == ["pa", None, "pb"]
        # one logical count per key...
        assert cache.stats.hits == 2 and cache.stats.misses == 1
        # ...and the disk hits were promoted into memory
        assert ("a",) in cache.memory and ("b",) in cache.memory
        cache.get_many([("a",), ("b",)])
        assert cache.disk.stats.hits == 2, "promoted entries stop touching disk"
