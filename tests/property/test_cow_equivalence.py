"""Property-based equivalence of deep and copy-on-write pattern application.

For random flows and random pattern sequences, applying the sequence on a
``copy_mode="deep"`` chain and on a ``copy_mode="cow"`` chain must yield
indistinguishable results: identical signatures, identical validation
issues, identical (static) quality profiles.  A second property asserts
the :func:`validate_delta` / :func:`validate_flow` oracle agreement on
the same random chains.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.alternatives import AlternativeGenerator
from repro.core.configuration import ProcessingConfiguration
from repro.core.policies import HeuristicPolicy
from repro.etl.validation import validate_delta, validate_flow
from repro.patterns.registry import default_palette
from repro.quality.estimator import EstimationSettings, QualityEstimator
from repro.workloads import RandomFlowConfig, random_flow

_PALETTE = list(default_palette())


def _apply_sequence(flow, picks, mode):
    """Apply a pick sequence on a chain of copies in the given copy mode.

    ``picks`` index into the (pattern, point) space; points are resolved
    against the *current* flow of the chain, exactly like the alternative
    generator's refresh step, so both modes resolve the same deployments.
    """
    current = flow.copy(mode=mode)
    chain = [current]
    for pattern_pick, point_pick in picks:
        pattern = _PALETTE[pattern_pick % len(_PALETTE)]
        points = pattern.find_application_points(current)
        if not points:
            continue
        point = points[point_pick % len(points)]
        current = pattern.apply(current, point)
        chain.append(current)
    return current, chain


_pick_sequences = st.lists(
    st.tuples(st.integers(min_value=0, max_value=63), st.integers(min_value=0, max_value=63)),
    min_size=1,
    max_size=4,
)


class TestCowEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2_000),
        operations=st.integers(min_value=8, max_value=18),
        picks=_pick_sequences,
    )
    def test_same_signature_and_structure(self, seed, operations, picks):
        flow = random_flow(RandomFlowConfig(operations=operations, sources=2, seed=seed))
        deep_result, _ = _apply_sequence(flow, picks, "deep")
        cow_result, _ = _apply_sequence(flow, picks, "cow")
        assert deep_result.signature() == cow_result.signature()
        assert deep_result.structurally_equal(cow_result)
        assert deep_result.annotations == cow_result.annotations

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2_000),
        operations=st.integers(min_value=8, max_value=16),
        picks=_pick_sequences,
    )
    def test_same_validation_issues(self, seed, operations, picks):
        flow = random_flow(RandomFlowConfig(operations=operations, sources=2, seed=seed))
        deep_result, _ = _apply_sequence(flow, picks, "deep")
        cow_result, _ = _apply_sequence(flow, picks, "cow")
        deep_issues = sorted(str(i) for i in validate_flow(deep_result))
        cow_issues = sorted(str(i) for i in validate_flow(cow_result))
        assert deep_issues == cow_issues

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=1_000),
        operations=st.integers(min_value=8, max_value=14),
        picks=_pick_sequences,
    )
    def test_same_static_quality_profile(self, seed, operations, picks):
        flow = random_flow(RandomFlowConfig(operations=operations, sources=2, seed=seed))
        deep_result, _ = _apply_sequence(flow, picks, "deep")
        cow_result, _ = _apply_sequence(flow, picks, "cow")
        estimator = QualityEstimator(settings=EstimationSettings(use_simulation=False))
        deep_profile = estimator.evaluate(deep_result)
        cow_profile = estimator.evaluate(cow_result)
        assert deep_profile.scores == cow_profile.scores
        assert {k: v.value for k, v in deep_profile.values.items()} == {
            k: v.value for k, v in cow_profile.values.items()
        }

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2_000),
        operations=st.integers(min_value=8, max_value=16),
        picks=_pick_sequences,
    )
    def test_original_flow_never_mutated(self, seed, operations, picks):
        flow = random_flow(RandomFlowConfig(operations=operations, sources=2, seed=seed))
        before = flow.signature()
        _apply_sequence(flow, picks, "cow")
        assert flow.signature() == before


class TestPrefixCacheEquivalence:
    """The prefix cache must never change the generated alternative space.

    For random flows, every (copy_mode, prefix_cache) arm of the
    generator must produce the same alternative stream: same labels, same
    pattern applications, same signatures.  This is the property behind
    the ``prefix_cache`` default being safe to leave on.
    """

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2_000),
        operations=st.integers(min_value=8, max_value=14),
        budget=st.integers(min_value=1, max_value=3),
    )
    def test_all_arms_agree(self, seed, operations, budget):
        flow = random_flow(RandomFlowConfig(operations=operations, sources=2, seed=seed))
        outcomes = []
        for mode in ("deep", "cow"):
            for prefix_cache in (True, False):
                config = ProcessingConfiguration(
                    pattern_budget=budget,
                    max_points_per_pattern=2,
                    max_alternatives=150,
                    copy_mode=mode,
                    prefix_cache=prefix_cache,
                )
                generator = AlternativeGenerator(
                    default_palette(), HeuristicPolicy(), config
                )
                outcomes.append(
                    [
                        (a.label, a.pattern_names, a.flow.signature())
                        for a in generator.generate(flow)
                    ]
                )
        assert all(outcome == outcomes[0] for outcome in outcomes[1:])


class TestValidateDeltaOracle:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2_000),
        operations=st.integers(min_value=8, max_value=16),
        picks=_pick_sequences,
    )
    def test_stepwise_chain_agrees_with_oracle(self, seed, operations, picks):
        flow = random_flow(RandomFlowConfig(operations=operations, sources=2, seed=seed))
        _, chain = _apply_sequence(flow, picks, "cow")
        issues = validate_flow(chain[0])
        for parent, child in zip(chain, chain[1:]):
            assert child.derived_from(parent)
            issues = validate_delta(child, child.delta, issues)
            oracle = validate_flow(child)
            assert sorted(str(i) for i in issues) == sorted(str(i) for i in oracle)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2_000),
        operations=st.integers(min_value=8, max_value=16),
        picks=_pick_sequences,
    )
    def test_composed_chain_agrees_with_oracle(self, seed, operations, picks):
        flow = random_flow(RandomFlowConfig(operations=operations, sources=2, seed=seed))
        final, chain = _apply_sequence(flow, picks, "cow")
        if len(chain) < 2:
            pytest.skip("no pattern applied for this draw")
        composed = chain[1].delta
        for child in chain[2:]:
            composed = composed.compose(child.delta)
        issues = validate_delta(final, composed, validate_flow(chain[0]))
        oracle = validate_flow(final)
        assert sorted(str(i) for i in issues) == sorted(str(i) for i in oracle)
