"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pareto import pareto_front
from repro.etl.graph import ETLGraph
from repro.etl.operations import Operation, OperationKind
from repro.etl.properties import OperationProperties
from repro.etl.schema import DataType, Field, Schema
from repro.quality.framework import MeasureValue, QualityCharacteristic
from repro.quality.manageability import Coupling, LongestPathLength, MergeElementCount
from repro.simulator.engine import ETLSimulator, SimulationConfig
from repro.workloads import RandomFlowConfig, random_flow

# --------------------------------------------------------------------------
# Strategies
# --------------------------------------------------------------------------

_names = st.text(alphabet=string.ascii_lowercase + "_", min_size=1, max_size=12)


@st.composite
def schemas(draw) -> Schema:
    count = draw(st.integers(min_value=1, max_value=8))
    names = draw(
        st.lists(_names, min_size=count, max_size=count, unique=True)
    )
    fields = []
    for name in names:
        fields.append(
            Field(
                name,
                draw(st.sampled_from(list(DataType))),
                nullable=draw(st.booleans()),
                key=draw(st.booleans()),
            )
        )
    return Schema(tuple(fields))


@st.composite
def linear_flows(draw) -> ETLGraph:
    """Random linear flows: extract -> N transformations -> load."""
    schema = draw(schemas())
    length = draw(st.integers(min_value=0, max_value=6))
    flow = ETLGraph("prop_flow")
    source = Operation(
        OperationKind.EXTRACT_TABLE,
        op_id="src",
        output_schema=schema,
        config={"rows": draw(st.integers(min_value=1, max_value=5_000))},
        properties=OperationProperties(
            null_rate=draw(st.floats(min_value=0.0, max_value=0.5)),
            duplicate_rate=draw(st.floats(min_value=0.0, max_value=0.5)),
            error_rate=draw(st.floats(min_value=0.0, max_value=0.5)),
        ),
    )
    flow.add_operation(source)
    previous = source
    kinds = [
        OperationKind.FILTER,
        OperationKind.DERIVE,
        OperationKind.LOOKUP,
        OperationKind.SORT,
        OperationKind.AGGREGATE,
        OperationKind.FILTER_NULLS,
        OperationKind.DEDUPLICATE,
    ]
    for index in range(length):
        op = Operation(
            draw(st.sampled_from(kinds)),
            op_id=f"op_{index}",
            output_schema=schema,
            properties=OperationProperties(
                cost_per_tuple=draw(st.floats(min_value=0.0, max_value=0.2)),
                selectivity=draw(st.floats(min_value=0.1, max_value=1.5)),
                failure_rate=draw(st.floats(min_value=0.0, max_value=0.3)),
            ),
        )
        flow.add_operation(op)
        flow.add_edge(previous, op)
        previous = op
    sink = Operation(OperationKind.LOAD_TABLE, op_id="sink", output_schema=schema)
    flow.add_operation(sink)
    flow.add_edge(previous, sink)
    return flow


# --------------------------------------------------------------------------
# Schema invariants
# --------------------------------------------------------------------------


class TestSchemaProperties:
    @given(schema=schemas())
    def test_serialisation_round_trip(self, schema):
        assert Schema.from_dict(schema.to_dict()) == schema

    @given(schema=schemas())
    def test_projection_preserves_order_and_subset(self, schema):
        keep = list(schema.names[::2])
        projected = schema.project(keep)
        assert list(projected.names) == keep
        for field in projected:
            assert schema.field(field.name) == field

    @given(schema=schemas())
    def test_merge_keeps_all_fields(self, schema):
        merged = schema.merge(schema)
        assert len(merged) == 2 * len(schema)
        # names remain unique (the invariant enforced by Schema itself)
        assert len(set(merged.names)) == len(merged)

    @given(schema=schemas())
    def test_without_nulls_is_idempotent(self, schema):
        stripped = schema.without_nulls()
        assert stripped.without_nulls() == stripped
        assert stripped.nullable_fields == ()

    @given(schema=schemas())
    def test_compatibility_is_reflexive(self, schema):
        assert schema.is_compatible_with(schema)


# --------------------------------------------------------------------------
# Graph / flow invariants
# --------------------------------------------------------------------------


class TestFlowProperties:
    @settings(max_examples=30, deadline=None)
    @given(flow=linear_flows())
    def test_serialisation_round_trip(self, flow):
        restored = ETLGraph.from_dict(flow.to_dict())
        assert restored.structurally_equal(flow)
        assert restored.signature() == flow.signature()

    @settings(max_examples=30, deadline=None)
    @given(flow=linear_flows())
    def test_copy_equivalence_and_independence(self, flow):
        clone = flow.copy()
        assert clone.signature() == flow.signature()
        clone.operation("src").config["rows"] = -1
        assert flow.operation("src").config["rows"] != -1

    @settings(max_examples=30, deadline=None)
    @given(flow=linear_flows())
    def test_linear_flow_metrics(self, flow):
        # a linear pipeline has longest path = nodes - 1 and coupling < 1
        assert flow.longest_path_length() == flow.node_count - 1
        assert LongestPathLength().compute(flow) == flow.node_count - 1
        assert Coupling().compute(flow) == pytest.approx(
            (flow.node_count - 1) / flow.node_count
        )
        assert MergeElementCount().compute(flow) >= 0

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           operations=st.integers(min_value=8, max_value=30))
    def test_random_flows_always_valid(self, seed, operations):
        from repro.etl.validation import is_valid

        flow = random_flow(RandomFlowConfig(operations=operations, sources=2, seed=seed))
        assert is_valid(flow)
        assert flow.sources() and flow.sinks()


# --------------------------------------------------------------------------
# Simulator invariants
# --------------------------------------------------------------------------


class TestSimulatorProperties:
    @settings(max_examples=20, deadline=None)
    @given(flow=linear_flows(), seed=st.integers(min_value=0, max_value=1_000))
    def test_trace_invariants(self, flow, seed):
        trace = ETLSimulator(flow, SimulationConfig(runs=1, seed=seed)).run_once()
        assert trace.cycle_time_ms >= trace.critical_path_ms >= 0
        assert trace.rows_extracted >= 0
        assert trace.rows_loaded >= 0
        for op_trace in trace.operations.values():
            assert op_trace.rows_in >= 0 and op_trace.rows_out >= 0
            assert op_trace.time_ms >= 0
            assert 0 <= op_trace.null_rows <= op_trace.rows_out + 1e-9
            assert 0 <= op_trace.duplicate_rows <= op_trace.rows_out + 1e-9
            assert 0 <= op_trace.error_rows <= op_trace.rows_out + 1e-9
        # lost work can never exceed the total work of the run times the
        # number of failures
        total_work = sum(t.time_ms for t in trace.operations.values())
        assert trace.lost_work_ms <= total_work * max(1, len(trace.failures)) + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(flow=linear_flows(), seed=st.integers(min_value=0, max_value=1_000))
    def test_simulation_is_deterministic(self, flow, seed):
        a = ETLSimulator(flow, SimulationConfig(runs=2, seed=seed)).run()
        b = ETLSimulator(flow, SimulationConfig(runs=2, seed=seed)).run()
        assert a.summary() == b.summary()


# --------------------------------------------------------------------------
# Pareto skyline invariants
# --------------------------------------------------------------------------


class TestParetoProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        points=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100, allow_nan=False),
                st.floats(min_value=0, max_value=100, allow_nan=False),
                st.floats(min_value=0, max_value=100, allow_nan=False),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_skyline_definition(self, points):
        front = pareto_front(points)
        assert front, "the skyline of a non-empty set is non-empty"
        front_set = set(front)
        # no skyline point is dominated by any other point
        for i in front:
            for j in range(len(points)):
                if i == j:
                    continue
                dominates = all(points[j][k] >= points[i][k] for k in range(3)) and any(
                    points[j][k] > points[i][k] for k in range(3)
                )
                assert not dominates
        # every non-skyline point is dominated by some point
        for i in range(len(points)):
            if i in front_set:
                continue
            assert any(
                all(points[j][k] >= points[i][k] for k in range(3))
                and any(points[j][k] > points[i][k] for k in range(3))
                for j in range(len(points))
            )

    @settings(max_examples=40, deadline=None)
    @given(
        points=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100, allow_nan=False),
                st.floats(min_value=0, max_value=100, allow_nan=False),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_skyline_is_insensitive_to_order(self, points):
        front = {tuple(points[i]) for i in pareto_front(points)}
        reversed_points = list(reversed(points))
        front_reversed = {tuple(reversed_points[i]) for i in pareto_front(reversed_points)}
        assert front == front_reversed

    @settings(max_examples=40, deadline=None)
    @given(
        maximum=st.tuples(
            st.floats(min_value=50, max_value=100, allow_nan=False),
            st.floats(min_value=50, max_value=100, allow_nan=False),
        ),
        others=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=49, allow_nan=False),
                st.floats(min_value=0, max_value=49, allow_nan=False),
            ),
            max_size=20,
        ),
    )
    def test_a_globally_best_point_is_always_on_the_skyline(self, maximum, others):
        points = others + [maximum]
        front = pareto_front(points)
        assert len(points) - 1 in front


# --------------------------------------------------------------------------
# Measure-value invariants
# --------------------------------------------------------------------------


class TestMeasureValueProperties:
    @settings(max_examples=60)
    @given(
        baseline=st.floats(min_value=0.001, max_value=1e6, allow_nan=False),
        factor=st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
        higher_is_better=st.booleans(),
    )
    def test_relative_change_sign_convention(self, baseline, factor, higher_is_better):
        base = MeasureValue("m", QualityCharacteristic.PERFORMANCE, baseline, 0.5, higher_is_better)
        new = MeasureValue(
            "m", QualityCharacteristic.PERFORMANCE, baseline * factor, 0.5, higher_is_better
        )
        change = new.relative_change(base)
        if factor == pytest.approx(1.0):
            assert change == pytest.approx(0.0, abs=1e-9)
        elif (factor > 1.0) == higher_is_better:
            assert change >= 0
        else:
            assert change <= 0
