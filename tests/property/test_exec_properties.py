"""Property-based guarantees of the execution layer.

Two invariants over seeded random flows from the workload generator:

* **Determinism** -- compiling and executing the same flow twice with the
  same ``data_seed`` produces byte-identical loaded frames (the
  foundation the measured-calibration benchmark stands on), and a
  different ``data_seed`` is allowed to (and in practice does) differ.
* **Recovery routing** -- grafting the paper's ``AddCheckpoint``
  reliability pattern makes the node downstream of the checkpoint
  survivable: with an injected fault it *recovers* (savepoint replay +
  retry) and loads the same bytes as a fault-free run, while the same
  fault in the un-patterned flow surfaces as an :class:`ExecutionError`.
"""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.etl.operations import OperationKind
from repro.exec import ExecutionError, FlowExecutor
from repro.patterns.registry import default_palette
from repro.workloads import RandomFlowConfig, random_flow


def _small_flow(seed: int, operations: int):
    return random_flow(
        RandomFlowConfig(
            operations=operations, sources=2, rows_per_source=150, seed=seed
        )
    )


def _checkpoint_pattern():
    for pattern in default_palette():
        if type(pattern).__name__ == "AddCheckpoint":
            return pattern
    raise AssertionError("AddCheckpoint missing from the default palette")


class TestExecutionDeterminism:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2_000),
        operations=st.integers(min_value=8, max_value=16),
        data_seed=st.integers(min_value=0, max_value=50),
    )
    def test_same_seed_same_bytes(self, seed: int, operations: int, data_seed: int):
        flow = _small_flow(seed, operations)
        first = FlowExecutor(data_seed=data_seed).execute(flow)
        second = FlowExecutor(data_seed=data_seed).execute(flow)
        assert first.frame_bytes() == second.frame_bytes()
        assert first.statuses == second.statuses
        assert set(first.statuses.values()) == {"ok"}

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2_000))
    def test_executing_never_mutates_the_flow(self, seed: int):
        flow = _small_flow(seed, 12)
        before = flow.to_dict()
        FlowExecutor(data_seed=7).execute(flow)
        assert flow.to_dict() == before


class TestRecoveryRouting:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=1_000),
        operations=st.integers(min_value=8, max_value=14),
        point_pick=st.integers(min_value=0, max_value=63),
    )
    def test_checkpointed_fault_recovers_unpatterned_raises(
        self, seed: int, operations: int, point_pick: int
    ):
        base = _small_flow(seed, operations)
        pattern = _checkpoint_pattern()
        points = pattern.find_application_points(base)
        assume(points)
        patterned = pattern.apply(base, points[point_pick % len(points)])

        checkpoints = patterned.operations_of_kind(OperationKind.CHECKPOINT)
        assert checkpoints, "AddCheckpoint grafted no checkpoint node"
        checkpoint = checkpoints[0]
        successors = list(patterned.successors(checkpoint.op_id))
        assume(successors)
        victim = successors[0].op_id

        patterned.mutable_operation(victim).config["fail_times"] = 1
        report = FlowExecutor(data_seed=7).execute(patterned)
        assert report.statuses[victim] == "recovered"

        # The recovered run is indistinguishable from a fault-free one.
        del patterned.mutable_operation(victim).config["fail_times"]
        clean = FlowExecutor(data_seed=7).execute(patterned)
        assert report.frame_bytes() == clean.frame_bytes()

        # The same fault without the reliability pattern tears the run down.
        unpatterned = _small_flow(seed, operations)
        assert victim in {op.op_id for op in unpatterned.operations()}
        unpatterned.mutable_operation(victim).config["fail_times"] = 1
        with pytest.raises(ExecutionError):
            FlowExecutor(data_seed=7).execute(unpatterned)
