"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core import Planner, ProcessingConfiguration
from repro.etl.builder import FlowBuilder
from repro.etl.graph import ETLGraph
from repro.etl.schema import DataType, Field, Schema
from repro.quality.estimator import EstimationSettings, QualityEstimator
from repro.simulator.engine import ETLSimulator, SimulationConfig
from repro.workloads import purchases_flow, tpch_refresh_flow


@pytest.fixture
def simple_schema() -> Schema:
    """A small schema with a key, numeric, temporal and nullable fields."""
    return Schema.of(
        Field("id", DataType.INTEGER, nullable=False, key=True),
        Field("name", DataType.STRING, nullable=True),
        Field("amount", DataType.DECIMAL, nullable=True),
        Field("created_at", DataType.TIMESTAMP, nullable=True),
    )


@pytest.fixture
def linear_flow(simple_schema: Schema) -> ETLGraph:
    """A minimal linear flow: extract -> filter -> derive -> load."""
    builder = FlowBuilder("linear")
    src = builder.extract_table(
        "src", schema=simple_schema, rows=1_000, null_rate=0.1, duplicate_rate=0.05,
        error_rate=0.02, freshness_lag=30.0,
    )
    flt = builder.filter("flt", predicate="amount > 0", selectivity=0.8, after=src)
    der = builder.derive("der", expressions={"total": "amount * 2"}, cost_per_tuple=0.05, after=flt)
    der.properties.failure_rate = 0.1
    builder.load_table("load", after=der)
    return builder.build()


@pytest.fixture
def branching_flow(simple_schema: Schema) -> ETLGraph:
    """A flow with two sources, a join, an aggregation branch and two loads."""
    builder = FlowBuilder("branching")
    left = builder.extract_table("left_src", schema=simple_schema, rows=500, null_rate=0.05)
    right = builder.extract_table("right_src", schema=simple_schema, rows=800, error_rate=0.04)
    left_filter = builder.filter("left_filter", predicate="amount > 0", selectivity=0.7, after=left)
    join = builder.join("join", left_filter, right, on=["id"], cost_per_tuple=0.03)
    derive = builder.derive("enrich", expressions={"x": "amount + 1"}, cost_per_tuple=0.04, after=join)
    builder.load_table("load_detail", after=derive)
    agg = builder.aggregate("agg", group_by=["name"], selectivity=0.1, after=derive)
    builder.load_table("load_summary", after=agg)
    return builder.build()


@pytest.fixture
def small_purchases() -> ETLGraph:
    """A scaled-down Fig. 2 purchases flow (fast to simulate)."""
    return purchases_flow(rows_per_source=2_000)


@pytest.fixture(scope="session")
def tpch_flow() -> ETLGraph:
    """A scaled-down TPC-H refresh flow (shared across tests; treat as read-only)."""
    return tpch_refresh_flow(scale=0.05)


def fast_planner_config(**overrides) -> ProcessingConfiguration:
    """A small, fully deterministic planner configuration for quick tests."""
    defaults = dict(
        pattern_budget=1,
        max_points_per_pattern=2,
        simulation_runs=1,
        max_alternatives=200,
        seed=7,
    )
    defaults.update(overrides)
    return ProcessingConfiguration(**defaults)


@pytest.fixture
def make_config():
    """Factory fixture for the shared deterministic planner configuration."""
    return fast_planner_config


@pytest.fixture
def make_planner():
    """Factory fixture for deterministic seeded planners.

    Shared across test modules so that planner-level tests agree on one
    baseline configuration; pass overrides for per-test knobs, e.g.
    ``make_planner(screening_beam=3, parallel_workers=4)``.
    """

    def make(**overrides) -> Planner:
        return Planner(configuration=fast_planner_config(**overrides))

    return make


@pytest.fixture
def seeded_planner(make_planner) -> Planner:
    """A deterministic seeded planner with the shared fast configuration."""
    return make_planner()


@pytest.fixture
def fast_estimator() -> QualityEstimator:
    """A quality estimator with a tiny simulation budget, for quick tests."""
    return QualityEstimator(settings=EstimationSettings(simulation_runs=2, seed=3))


@pytest.fixture
def fast_simulator_config() -> SimulationConfig:
    """A simulator configuration with a tiny run count."""
    return SimulationConfig(runs=2, seed=3)


def simulate(flow: ETLGraph, runs: int = 3, seed: int = 5):
    """Helper used by several test modules to get a trace archive quickly."""
    return ETLSimulator(flow, SimulationConfig(runs=runs, seed=seed)).run()
