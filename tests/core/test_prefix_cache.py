"""Tests of prefix-cached combination enumeration.

The lexicographic order of ``itertools.combinations`` makes consecutive
combinations share prefixes; ``ProcessingConfiguration.prefix_cache``
(default on) lets :class:`AlternativeGenerator` reuse the last chain's
intermediate flows and issue lists instead of re-applying the shared
prefix from the base flow.  These tests pin down

* byte-identical alternative streams with the cache on and off, in both
  copy modes (including the TPC-H acceptance run at ``pattern_budget=3``
  with the >= 2x cut in pattern applications),
* the exact :class:`GenerationStats` reuse accounting on a synthetic
  palette small enough to count by hand,
* safety: cached prefix flows never leak into or between yielded
  alternatives, and interleaved lazy runs keep separate caches.
"""

from __future__ import annotations

import pytest

from repro.core.alternatives import AlternativeGenerator
from repro.core.configuration import ProcessingConfiguration
from repro.core.policies import ExhaustivePolicy, HeuristicPolicy
from repro.etl.validation import is_valid
from repro.patterns.base import ApplicationPointType, FlowComponentPattern
from repro.patterns.registry import PatternRegistry, default_palette
from repro.workloads import purchases_flow


def _generate(flow, *, palette=None, policy=None, **overrides):
    defaults = dict(pattern_budget=2, max_points_per_pattern=2)
    defaults.update(overrides)
    config = ProcessingConfiguration(**defaults)
    generator = AlternativeGenerator(
        palette or default_palette(), policy or HeuristicPolicy(), config
    )
    return generator.generate(flow), generator.last_stats


def _outcome(alternatives):
    """The observable identity of an alternative stream."""
    return [(a.label, a.pattern_names, a.flow.signature()) for a in alternatives]


class _FlagPattern(FlowComponentPattern):
    """Synthetic graph-level pattern setting one annotation.

    Every application point is the whole graph and every application is a
    pure annotation write, so a palette of N flag patterns produces a
    fully predictable enumeration: every combination is reasonable,
    valid and unique, and the per-combination application counts can be
    derived by hand.
    """

    point_type = ApplicationPointType.GRAPH

    def __init__(self, name: str) -> None:
        self.name = name
        self.description = f"sets the {name!r} flag"

    def apply(self, flow, point):
        new_flow = flow.copy()
        new_flow.set_annotation(self.name, True)
        new_flow.record_pattern(f"{self.name} @ entire flow")
        return new_flow


def _flag_palette(count: int) -> PatternRegistry:
    return PatternRegistry(_FlagPattern(f"flag_{i}") for i in range(count))


class TestPrefixEquivalence:
    @pytest.mark.parametrize("mode", ["deep", "cow"])
    def test_identical_streams_budget_two(self, small_purchases, mode):
        on, _ = _generate(small_purchases, copy_mode=mode, prefix_cache=True)
        off, _ = _generate(small_purchases, copy_mode=mode, prefix_cache=False)
        assert _outcome(on) == _outcome(off)

    @pytest.mark.parametrize("mode", ["deep", "cow"])
    def test_identical_streams_budget_three(self, small_purchases, mode):
        knobs = dict(pattern_budget=3, max_points_per_pattern=3, copy_mode=mode)
        on, _ = _generate(small_purchases, prefix_cache=True, **knobs)
        off, _ = _generate(small_purchases, prefix_cache=False, **knobs)
        assert _outcome(on) == _outcome(off)

    def test_identical_across_all_four_arms(self, small_purchases):
        outcomes = []
        for mode in ("deep", "cow"):
            for prefix_cache in (True, False):
                alts, _ = _generate(
                    small_purchases,
                    pattern_budget=3,
                    max_points_per_pattern=3,
                    copy_mode=mode,
                    prefix_cache=prefix_cache,
                )
                outcomes.append(_outcome(alts))
        assert all(outcome == outcomes[0] for outcome in outcomes[1:])

    def test_tpch_acceptance_two_x_fewer_applications(self, tpch_flow):
        """The ISSUE acceptance bar: >= 2x fewer pattern applications at
        budget 3 on TPC-H, byte-identical alternative sets, both modes."""
        knobs = dict(pattern_budget=3, max_points_per_pattern=3, max_alternatives=1500)
        reference = None
        for mode in ("deep", "cow"):
            on, stats_on = _generate(tpch_flow, copy_mode=mode, prefix_cache=True, **knobs)
            off, stats_off = _generate(tpch_flow, copy_mode=mode, prefix_cache=False, **knobs)
            assert _outcome(on) == _outcome(off)
            if reference is None:
                reference = _outcome(on)
            else:
                assert _outcome(on) == reference
            assert stats_off.patterns_applied >= 2 * stats_on.patterns_applied, (
                f"{mode}: {stats_off.patterns_applied} uncached vs "
                f"{stats_on.patterns_applied} cached applications"
            )
            assert stats_on.prefix_steps_reused > 0
            assert stats_off.prefix_steps_reused == 0

    def test_respects_max_alternatives_and_labels(self, small_purchases):
        alts, _ = _generate(small_purchases, max_alternatives=5, prefix_cache=True)
        assert len(alts) == 5
        assert [a.label for a in alts] == [f"ETL Flow {i}" for i in range(1, 6)]


class TestPrefixExactCounts:
    """Hand-derived accounting on a palette of four flag patterns.

    Four graph-level deployments ``d0..d3`` at ``pattern_budget=3``
    enumerate 4 + 6 + 4 = 14 combinations, all reasonable, valid and
    unique.  Without the cache every combination replays its full chain:
    4*1 + 6*2 + 4*3 = 28 applications.  With the cache, walking the
    lexicographic order by hand gives 22 applications, 5 combinations
    reusing a prefix, and 6 reused steps:

    ========= ======================== ======= ======
    combo     cached prefix reused     applies reused
    ========= ======================== ======= ======
    size 1    (4 combos, none cached)        4      0
    (0,1)     --                             2      0
    (0,2)     (0,)                           1      1
    (0,3)     (0,)                           1      1
    (1,2)     --                             2      0
    (1,3)     (1,)                           1      1
    (2,3)     --                             2      0
    (0,1,2)   --                             3      0
    (0,1,3)   (0, 1)                         1      2
    (0,2,3)   (0,)                           2      1
    (1,2,3)   --                             3      0
    ========= ======================== ======= ======
    """

    EXPECTED_COMBOS = 14
    EXPECTED_APPLIED_UNCACHED = 28
    EXPECTED_APPLIED_CACHED = 22
    EXPECTED_PREFIX_HITS = 5
    EXPECTED_STEPS_REUSED = 6

    @pytest.mark.parametrize("mode", ["deep", "cow"])
    def test_exact_reuse_counters(self, linear_flow, mode):
        palette = _flag_palette(4)
        alts, stats = _generate(
            linear_flow,
            palette=palette,
            policy=ExhaustivePolicy(),
            pattern_budget=3,
            copy_mode=mode,
            prefix_cache=True,
        )
        assert len(alts) == self.EXPECTED_COMBOS
        assert stats.combinations_tried == self.EXPECTED_COMBOS
        assert stats.yielded == self.EXPECTED_COMBOS
        assert stats.duplicates_pruned == 0
        assert stats.invalid_discarded == 0
        assert stats.patterns_applied == self.EXPECTED_APPLIED_CACHED
        assert stats.prefix_hits == self.EXPECTED_PREFIX_HITS
        assert stats.prefix_steps_reused == self.EXPECTED_STEPS_REUSED

    @pytest.mark.parametrize("mode", ["deep", "cow"])
    def test_exact_counts_uncached(self, linear_flow, mode):
        palette = _flag_palette(4)
        alts, stats = _generate(
            linear_flow,
            palette=palette,
            policy=ExhaustivePolicy(),
            pattern_budget=3,
            copy_mode=mode,
            prefix_cache=False,
        )
        assert len(alts) == self.EXPECTED_COMBOS
        assert stats.patterns_applied == self.EXPECTED_APPLIED_UNCACHED
        assert stats.prefix_hits == 0
        assert stats.prefix_steps_reused == 0

    def test_apply_validation_split_reported(self, small_purchases):
        _, stats = _generate(small_purchases, copy_mode="cow", pattern_budget=2)
        assert stats.apply_seconds > 0
        assert stats.validation_seconds > 0
        assert stats.wall_seconds > 0
        payload = stats.as_dict()
        for key in (
            "prefix_cache",
            "patterns_applied",
            "prefix_hits",
            "prefix_steps_reused",
            "apply_seconds",
            "validation_seconds",
        ):
            assert key in payload
        assert payload["prefix_cache"] is True
        assert payload["patterns_applied"] == stats.patterns_applied


class TestPrefixSafety:
    def test_alternatives_stay_self_contained(self, small_purchases):
        """Mutating one yielded alternative must not bleed into any other
        (cached prefix flows are shared internally but never yielded)."""
        alts, _ = _generate(
            small_purchases, copy_mode="cow", pattern_budget=3, max_points_per_pattern=3
        )
        assert all(is_valid(a.flow) for a in alts)
        first = alts[0].flow
        target = first.operation_ids()[0]
        first.mutable_operation(target).config["marker"] = True
        assert "marker" not in small_purchases.operation(target).config
        for other in alts[1:]:
            if target in other.flow:
                assert "marker" not in other.flow.operation(target).config

    def test_base_flow_untouched(self, small_purchases):
        before = small_purchases.signature()
        for mode in ("deep", "cow"):
            _generate(small_purchases, copy_mode=mode, pattern_budget=3)
            assert small_purchases.signature() == before

    def test_interleaved_lazy_runs_have_separate_caches(self, small_purchases, tpch_flow):
        config = ProcessingConfiguration(
            pattern_budget=2, max_points_per_pattern=2, copy_mode="cow", prefix_cache=True
        )
        generator = AlternativeGenerator(default_palette(), HeuristicPolicy(), config)
        first = generator.generate_iter(small_purchases)
        second = generator.generate_iter(tpch_flow)
        interleaved = []
        for _ in range(5):
            interleaved.append(next(first))
            interleaved.append(next(second))
        interleaved.extend(first)
        interleaved.extend(second)
        assert all(is_valid(a.flow) for a in interleaved)
        solo = _outcome(
            _generate(small_purchases, copy_mode="cow", prefix_cache=True)[0]
        )
        purchases_part = [
            (a.label, a.pattern_names, a.flow.signature())
            for a in interleaved
            if a.flow.name.startswith(small_purchases.name)
        ]
        assert purchases_part == solo

    def test_prefix_cache_defaults_on(self):
        assert ProcessingConfiguration().prefix_cache is True
        stats_payload = ProcessingConfiguration(prefix_cache=False)
        assert stats_payload.prefix_cache is False
