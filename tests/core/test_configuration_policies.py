"""Tests for processing configurations, constraints and deployment policies."""

import pytest

from repro.core.configuration import MeasureConstraint, ProcessingConfiguration
from repro.core.policies import (
    ExhaustivePolicy,
    GoalDrivenPolicy,
    HeuristicPolicy,
    RandomPolicy,
    policy_by_name,
)
from repro.patterns.data_quality import FilterNullValues
from repro.patterns.performance import ParallelizeTask
from repro.patterns.reliability import AddCheckpoint
from repro.quality.composite import QualityProfile
from repro.quality.framework import MeasureValue, QualityCharacteristic


def _profile(perf=50.0, cycle=1_000.0):
    profile = QualityProfile(flow_name="f")
    profile.scores[QualityCharacteristic.PERFORMANCE] = perf
    profile.values["process_cycle_time_ms"] = MeasureValue(
        measure="process_cycle_time_ms",
        characteristic=QualityCharacteristic.PERFORMANCE,
        value=cycle,
        normalized=0.5,
        higher_is_better=False,
    )
    return profile


class TestMeasureConstraint:
    def test_measure_bounds(self):
        constraint = MeasureConstraint("process_cycle_time_ms", max_value=2_000.0)
        assert constraint.is_satisfied_by(_profile(cycle=1_500.0))
        assert not constraint.is_satisfied_by(_profile(cycle=2_500.0))

    def test_characteristic_bounds(self):
        constraint = MeasureConstraint("performance", min_value=40.0)
        assert constraint.is_satisfied_by(_profile(perf=50.0))
        assert not constraint.is_satisfied_by(_profile(perf=30.0))

    def test_unknown_target_is_not_blocking(self):
        constraint = MeasureConstraint("unknown_measure", min_value=1.0)
        assert constraint.is_satisfied_by(_profile())

    def test_min_and_max_together(self):
        constraint = MeasureConstraint("process_cycle_time_ms", min_value=500.0, max_value=1_500.0)
        assert constraint.is_satisfied_by(_profile(cycle=1_000.0))
        assert not constraint.is_satisfied_by(_profile(cycle=100.0))


class TestProcessingConfiguration:
    def test_defaults_are_valid(self):
        config = ProcessingConfiguration()
        assert config.pattern_budget == 2
        assert config.policy == "heuristic"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"pattern_budget": 0},
            {"max_points_per_pattern": 0},
            {"max_alternatives": 0},
            {"simulation_runs": 0},
            {"parallel_workers": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ProcessingConfiguration(**kwargs)

    def test_prioritized_characteristics(self):
        config = ProcessingConfiguration(
            goal_priorities={
                QualityCharacteristic.RELIABILITY: 0.2,
                QualityCharacteristic.PERFORMANCE: 0.9,
            }
        )
        assert config.prioritized_characteristics()[0] is QualityCharacteristic.PERFORMANCE

    def test_prioritized_defaults_to_skyline(self):
        config = ProcessingConfiguration()
        assert config.prioritized_characteristics() == list(config.skyline_characteristics)

    def test_satisfies_constraints(self):
        config = ProcessingConfiguration(
            constraints=(MeasureConstraint("performance", min_value=40.0),)
        )
        assert config.satisfies_constraints(_profile(perf=50.0))
        assert not config.satisfies_constraints(_profile(perf=10.0))


class TestPolicies:
    def _points(self, pattern, flow):
        return pattern.find_application_points(flow)

    def test_exhaustive_keeps_all_up_to_limit(self, small_purchases):
        pattern = FilterNullValues()
        points = self._points(pattern, small_purchases)
        policy = ExhaustivePolicy()
        assert len(policy.select_points(pattern, points, small_purchases, 0)) == len(points)
        assert len(policy.select_points(pattern, points, small_purchases, 2)) == 2

    def test_exhaustive_orders_by_fitness(self, small_purchases):
        pattern = FilterNullValues()
        points = self._points(pattern, small_purchases)
        selected = ExhaustivePolicy().select_points(pattern, points, small_purchases, 3)
        fitnesses = [p.fitness for p in selected]
        assert fitnesses == sorted(fitnesses, reverse=True)

    def test_heuristic_threshold_filters(self, small_purchases):
        pattern = AddCheckpoint()
        points = self._points(pattern, small_purchases)
        strict = HeuristicPolicy(fitness_threshold=0.99)
        selected = strict.select_points(pattern, points, small_purchases, 10)
        # never empty: at least the single best placement survives
        assert len(selected) >= 1
        relaxed = HeuristicPolicy(fitness_threshold=0.0)
        assert len(relaxed.select_points(pattern, points, small_purchases, 10)) >= len(selected)

    def test_heuristic_invalid_threshold(self):
        with pytest.raises(ValueError):
            HeuristicPolicy(fitness_threshold=1.5)

    def test_random_policy_is_seeded(self, small_purchases):
        pattern = FilterNullValues()
        points = self._points(pattern, small_purchases)
        a = RandomPolicy(seed=1).select_points(pattern, points, small_purchases, 3)
        b = RandomPolicy(seed=1).select_points(pattern, points, small_purchases, 3)
        c = RandomPolicy(seed=2).select_points(pattern, points, small_purchases, 3)
        assert [p.key() for p in a] == [p.key() for p in b]
        assert len(a) == 3
        assert {p.key() for p in a} <= {p.key() for p in points}
        # different seed very likely differs (not guaranteed, but stable here)
        assert [p.key() for p in a] != [p.key() for p in c]

    def test_random_policy_empty_points(self, small_purchases):
        assert RandomPolicy().select_points(FilterNullValues(), [], small_purchases, 3) == []

    def test_goal_driven_prioritises_matching_patterns(self, small_purchases):
        priorities = {QualityCharacteristic.PERFORMANCE: 1.0, QualityCharacteristic.DATA_QUALITY: 0.2}
        policy = GoalDrivenPolicy(priorities)
        patterns = [FilterNullValues(), ParallelizeTask(), AddCheckpoint()]
        ordered = policy.select_patterns(patterns)
        assert ordered[0].name == "ParallelizeTask"

        perf_points = policy.select_points(
            ParallelizeTask(), self._points(ParallelizeTask(), small_purchases),
            small_purchases, 4,
        )
        dq_points = policy.select_points(
            FilterNullValues(), self._points(FilterNullValues(), small_purchases),
            small_purchases, 4,
        )
        reliability_points = policy.select_points(
            AddCheckpoint(), self._points(AddCheckpoint(), small_purchases),
            small_purchases, 4,
        )
        assert len(perf_points) >= len(dq_points)
        # reliability has priority 0 -> no points granted
        assert reliability_points == []

    def test_goal_driven_requires_priorities(self):
        with pytest.raises(ValueError):
            GoalDrivenPolicy({})

    def test_policy_by_name(self):
        assert isinstance(policy_by_name("exhaustive"), ExhaustivePolicy)
        assert isinstance(policy_by_name("heuristic"), HeuristicPolicy)
        assert isinstance(policy_by_name("random"), RandomPolicy)
        assert isinstance(
            policy_by_name("goal_driven", priorities={QualityCharacteristic.PERFORMANCE: 1.0}),
            GoalDrivenPolicy,
        )
        with pytest.raises(ValueError):
            policy_by_name("goal_driven")
        with pytest.raises(ValueError):
            policy_by_name("unknown")
