"""Tests for the planner pipeline, the parallel evaluator and redesign sessions."""

import pytest

from repro.core.alternatives import AlternativeFlow
from repro.core.configuration import MeasureConstraint, ProcessingConfiguration
from repro.core.evaluator import ParallelEvaluator
from repro.core.planner import Planner, PlanningResult
from repro.core.session import RedesignSession
from repro.patterns.registry import default_palette, figure6_palette
from repro.quality.estimator import EstimationSettings, QualityEstimator
from repro.quality.framework import QualityCharacteristic


def _fast_config(**overrides) -> ProcessingConfiguration:
    defaults = dict(
        pattern_budget=1,
        max_points_per_pattern=2,
        simulation_runs=1,
        max_alternatives=200,
    )
    defaults.update(overrides)
    return ProcessingConfiguration(**defaults)


class TestParallelEvaluator:
    def _alternatives(self, flow, count=4):
        return [AlternativeFlow(flow=flow.copy(name=f"alt_{i}")) for i in range(count)]

    def test_sequential_evaluation_fills_profiles(self, linear_flow, fast_estimator):
        evaluator = ParallelEvaluator(estimator=fast_estimator, workers=1)
        alternatives = evaluator.evaluate(self._alternatives(linear_flow))
        assert all(alt.profile is not None for alt in alternatives)

    def test_parallel_matches_sequential(self, linear_flow):
        estimator = QualityEstimator(settings=EstimationSettings(simulation_runs=1, seed=3))
        sequential = ParallelEvaluator(estimator=estimator, workers=1).evaluate(
            self._alternatives(linear_flow)
        )
        parallel = ParallelEvaluator(estimator=estimator, workers=4).evaluate(
            self._alternatives(linear_flow)
        )
        for s, p in zip(sequential, parallel):
            assert s.profile.scores == p.profile.scores

    def test_empty_batch(self, fast_estimator):
        assert ParallelEvaluator(estimator=fast_estimator).evaluate([]) == []

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ParallelEvaluator(workers=0)
        with pytest.raises(ValueError):
            ParallelEvaluator(backend="gpu")  # type: ignore[arg-type]


class TestPlanner:
    def test_plan_produces_alternatives_profiles_and_skyline(self, small_purchases):
        planner = Planner(configuration=_fast_config())
        result = planner.plan(small_purchases)
        assert isinstance(result, PlanningResult)
        assert result.alternatives
        assert all(alt.profile is not None for alt in result.alternatives)
        assert result.skyline_indices
        assert set(result.skyline_indices) <= set(range(len(result.alternatives)))
        assert result.baseline_profile.flow_name == small_purchases.name

    def test_skyline_profiles_are_mutually_non_dominated(self, small_purchases):
        planner = Planner(configuration=_fast_config(pattern_budget=2))
        result = planner.plan(small_purchases)
        skyline = result.skyline
        for a in skyline:
            for b in skyline:
                if a is b:
                    continue
                assert not a.profile.dominates(b.profile, result.characteristics)

    def test_dominated_alternatives_are_not_on_skyline(self, small_purchases):
        planner = Planner(configuration=_fast_config(pattern_budget=2))
        result = planner.plan(small_purchases)
        skyline_set = set(result.skyline_indices)
        for index, alternative in enumerate(result.alternatives):
            if index in skyline_set:
                continue
            dominated = any(
                other.profile.dominates(alternative.profile, result.characteristics)
                for other in result.alternatives
                if other is not alternative
            )
            assert dominated

    def test_constraints_discard_alternatives(self, small_purchases):
        unconstrained = Planner(configuration=_fast_config()).plan(small_purchases)
        impossible = _fast_config(
            constraints=(MeasureConstraint("performance", min_value=1_000.0),)
        )
        constrained = Planner(configuration=impossible).plan(small_purchases)
        assert constrained.discarded_by_constraints == len(unconstrained.alternatives)
        assert constrained.alternatives == []
        assert constrained.skyline_indices == []

    def test_comparison_against_baseline(self, small_purchases):
        planner = Planner(configuration=_fast_config())
        result = planner.plan(small_purchases)
        parallel_alt = next(
            (alt for alt in result.alternatives if "ParallelizeTask" in alt.pattern_names),
            None,
        )
        assert parallel_alt is not None
        comparison = result.comparison(parallel_alt)
        cycle = comparison.measure_changes["process_cycle_time_ms"]
        assert cycle.new_value < cycle.baseline_value
        assert cycle.relative_improvement > 0

    def test_best_for_characteristic(self, small_purchases):
        planner = Planner(configuration=_fast_config())
        result = planner.plan(small_purchases)
        best_reliability = result.best_for(QualityCharacteristic.RELIABILITY)
        assert "AddCheckpoint" in best_reliability.pattern_names

    def test_restricted_palette(self, small_purchases):
        planner = Planner(
            palette=figure6_palette().subset(["AddCheckpoint"]),
            configuration=_fast_config(),
        )
        result = planner.plan(small_purchases)
        assert result.alternatives
        assert all(alt.pattern_names == ("AddCheckpoint",) for alt in result.alternatives)

    def test_summary_keys(self, small_purchases):
        result = Planner(configuration=_fast_config()).plan(small_purchases)
        summary = result.summary()
        assert summary["initial_flow"] == small_purchases.name
        assert summary["alternatives"] == len(result.alternatives)
        assert summary["skyline_size"] == len(result.skyline_indices)

    def test_comparison_requires_evaluated_alternative(self, small_purchases):
        result = Planner(configuration=_fast_config()).plan(small_purchases)
        unevaluated = AlternativeFlow(flow=small_purchases.copy())
        with pytest.raises(ValueError):
            result.comparison(unevaluated)

    def test_parallel_workers_configuration(self, small_purchases):
        parallel = Planner(configuration=_fast_config(parallel_workers=4))
        serial = Planner(configuration=_fast_config(parallel_workers=1))
        a = parallel.plan(small_purchases)
        b = serial.plan(small_purchases)
        assert len(a.alternatives) == len(b.alternatives)


class TestRedesignSession:
    def test_iterate_and_select(self, small_purchases):
        session = RedesignSession(small_purchases, configuration=_fast_config())
        iteration = session.iterate()
        assert session.iteration_count == 1
        choice = iteration.result.skyline[0]
        new_flow = session.select(choice)
        assert new_flow is session.current_flow
        assert new_flow.signature() != small_purchases.signature()
        assert iteration.selected is choice
        assert iteration.selected_comparison is not None

    def test_select_requires_iteration(self, small_purchases):
        session = RedesignSession(small_purchases, configuration=_fast_config())
        with pytest.raises(ValueError):
            session.select(AlternativeFlow(flow=small_purchases.copy()))

    def test_select_rejects_foreign_alternative(self, small_purchases):
        session = RedesignSession(small_purchases, configuration=_fast_config())
        session.iterate()
        with pytest.raises(ValueError):
            session.select(AlternativeFlow(flow=small_purchases.copy()))

    def test_select_best_improves_target_characteristic(self, small_purchases):
        session = RedesignSession(small_purchases, configuration=_fast_config())
        baseline = session.planner.evaluate_flow(small_purchases)
        session.iterate()
        best = session.select_best(QualityCharacteristic.RELIABILITY)
        assert best.profile.score(QualityCharacteristic.RELIABILITY) >= baseline.score(
            QualityCharacteristic.RELIABILITY
        )

    def test_incremental_iterations_accumulate_patterns(self, small_purchases):
        session = RedesignSession(small_purchases, configuration=_fast_config())
        session.run(iterations=2)
        assert session.iteration_count == 2
        assert len(session.current_flow.applied_patterns) >= 2
        history = session.history()
        assert len(history) == 2
        assert history[0]["selected"] is not None

    def test_run_with_custom_chooser_stopping_early(self, small_purchases):
        session = RedesignSession(small_purchases, configuration=_fast_config())
        session.run(iterations=3, chooser=lambda result: None)
        assert session.iteration_count == 1
        assert session.current_flow is small_purchases

    def test_run_requires_positive_iterations(self, small_purchases):
        session = RedesignSession(small_purchases, configuration=_fast_config())
        with pytest.raises(ValueError):
            session.run(iterations=0)

    def test_current_profile(self, small_purchases):
        session = RedesignSession(small_purchases, configuration=_fast_config())
        profile = session.current_profile
        assert profile.flow_name == small_purchases.name
