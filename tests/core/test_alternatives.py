"""Tests for alternative-flow generation (pattern generation + application)."""

import pytest

from repro.core.alternatives import AlternativeGenerator
from repro.core.configuration import ProcessingConfiguration
from repro.core.policies import ExhaustivePolicy, HeuristicPolicy
from repro.etl.validation import is_valid
from repro.patterns.registry import default_palette, figure6_palette


class TestCandidateDeployments:
    def test_all_patterns_checked(self, small_purchases):
        generator = AlternativeGenerator(default_palette(), ExhaustivePolicy())
        counts = generator.application_point_counts(small_purchases)
        assert set(counts) == set(default_palette().names())
        # every pattern of the Fig. 6 palette finds at least one point on
        # the purchases flow
        for name in figure6_palette().names():
            assert counts[name] >= 1, name

    def test_policy_limits_points_per_pattern(self, small_purchases):
        config = ProcessingConfiguration(max_points_per_pattern=1)
        generator = AlternativeGenerator(default_palette(), ExhaustivePolicy(), config)
        deployments = generator.candidate_deployments(small_purchases)
        per_pattern: dict[str, int] = {}
        for deployment in deployments:
            per_pattern[deployment.pattern.name] = per_pattern.get(deployment.pattern.name, 0) + 1
        assert all(count <= 1 for count in per_pattern.values())

    def test_palette_restriction(self, small_purchases):
        config = ProcessingConfiguration(pattern_names=("FilterNullValues",))
        generator = AlternativeGenerator(default_palette(), ExhaustivePolicy(), config)
        deployments = generator.candidate_deployments(small_purchases)
        assert deployments
        assert all(d.pattern.name == "FilterNullValues" for d in deployments)


class TestGeneration:
    def test_budget_one_yields_single_pattern_alternatives(self, small_purchases):
        config = ProcessingConfiguration(pattern_budget=1, max_points_per_pattern=2)
        generator = AlternativeGenerator(default_palette(), HeuristicPolicy(), config)
        alternatives = generator.generate(small_purchases)
        assert alternatives
        assert all(len(alt.applications) == 1 for alt in alternatives)

    def test_budget_two_yields_combinations(self, small_purchases):
        config = ProcessingConfiguration(pattern_budget=2, max_points_per_pattern=2)
        generator = AlternativeGenerator(default_palette(), HeuristicPolicy(), config)
        alternatives = generator.generate(small_purchases)
        sizes = {len(alt.applications) for alt in alternatives}
        assert sizes == {1, 2}
        singles = sum(1 for alt in alternatives if len(alt.applications) == 1)
        pairs = sum(1 for alt in alternatives if len(alt.applications) == 2)
        assert pairs > singles  # combinations dominate the space

    def test_all_alternatives_are_valid_flows(self, small_purchases):
        config = ProcessingConfiguration(pattern_budget=2, max_points_per_pattern=2)
        generator = AlternativeGenerator(default_palette(), HeuristicPolicy(), config)
        for alternative in generator.generate(small_purchases):
            assert is_valid(alternative.flow)

    def test_alternatives_are_structurally_distinct(self, small_purchases):
        config = ProcessingConfiguration(pattern_budget=2, max_points_per_pattern=2)
        generator = AlternativeGenerator(default_palette(), HeuristicPolicy(), config)
        alternatives = generator.generate(small_purchases)
        signatures = [alt.flow.signature() for alt in alternatives]
        assert len(signatures) == len(set(signatures))
        # none of them equals the initial flow
        assert small_purchases.signature() not in signatures

    def test_initial_flow_is_never_mutated(self, small_purchases):
        before = small_purchases.signature()
        config = ProcessingConfiguration(pattern_budget=2, max_points_per_pattern=2)
        AlternativeGenerator(default_palette(), HeuristicPolicy(), config).generate(small_purchases)
        assert small_purchases.signature() == before

    def test_max_alternatives_cap(self, small_purchases):
        config = ProcessingConfiguration(
            pattern_budget=3, max_points_per_pattern=4, max_alternatives=25
        )
        generator = AlternativeGenerator(default_palette(), ExhaustivePolicy(), config)
        alternatives = generator.generate(small_purchases)
        assert len(alternatives) == 25

    def test_labels_are_sequential(self, small_purchases):
        config = ProcessingConfiguration(pattern_budget=1, max_points_per_pattern=1)
        generator = AlternativeGenerator(default_palette(), HeuristicPolicy(), config)
        alternatives = generator.generate(small_purchases)
        assert [alt.label for alt in alternatives] == [
            f"ETL Flow {i + 1}" for i in range(len(alternatives))
        ]

    def test_describe_and_pattern_names(self, small_purchases):
        config = ProcessingConfiguration(pattern_budget=1, max_points_per_pattern=1)
        generator = AlternativeGenerator(default_palette(), HeuristicPolicy(), config)
        alternative = generator.generate(small_purchases)[0]
        assert alternative.pattern_names[0] in alternative.describe()

    def test_generate_iter_matches_generate(self, small_purchases):
        config = ProcessingConfiguration(pattern_budget=1, max_points_per_pattern=1)
        generator = AlternativeGenerator(default_palette(), HeuristicPolicy(), config)
        eager = [alt.flow.signature() for alt in generator.generate(small_purchases)]
        lazy = [alt.flow.signature() for alt in generator.generate_iter(small_purchases)]
        assert eager == lazy

    def test_thousands_of_alternatives_on_larger_flow(self, tpch_flow):
        # The paper claims thousands of alternative flows from processes
        # with tens of operators; with an exhaustive policy and budget 2
        # the TPC-H flow must exceed one thousand.
        config = ProcessingConfiguration(
            pattern_budget=2, max_points_per_pattern=12, max_alternatives=100_000
        )
        generator = AlternativeGenerator(
            default_palette(include_graph_level=False), ExhaustivePolicy(), config
        )
        alternatives = generator.generate(tpch_flow)
        assert len(alternatives) > 1_000
