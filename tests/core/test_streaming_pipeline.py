"""Tests for the streaming planning pipeline.

Covers the lazy alternative generator, the streaming evaluator, the
profile cache shared across session iterations, and the two-phase beam
screening -- including the equivalence guarantees: with all knobs at
their defaults the streaming pipeline reproduces the eager
generate-then-evaluate behaviour exactly.
"""

import itertools
import json

import pytest

from repro.core.alternatives import AlternativeFlow, AlternativeGenerator
from repro.core.configuration import ProcessingConfiguration
from repro.core.evaluator import ParallelEvaluator
from repro.core.pareto import pareto_front_profiles
from repro.core.planner import Planner, PlanningResult
from repro.core.session import RedesignSession
from repro.patterns.registry import default_palette
from repro.quality.estimator import EstimationSettings, QualityEstimator
from repro.quality.framework import QualityCharacteristic


def _eager_plan(planner: Planner, flow) -> PlanningResult:
    """The seed's eager pipeline: materialize, barrier-evaluate, filter."""
    config = planner.configuration
    baseline = planner.evaluate_flow(flow)
    alternatives = planner.evaluate_alternatives(planner.generate_alternatives(flow))
    kept, discarded = [], 0
    for alternative in alternatives:
        if config.satisfies_constraints(alternative.profile):
            kept.append(alternative)
        else:
            discarded += 1
    characteristics = tuple(config.skyline_characteristics)
    profiles = [alt.profile for alt in kept]
    skyline = pareto_front_profiles(profiles, characteristics) if profiles else []
    return PlanningResult(
        initial_flow=flow,
        baseline_profile=baseline,
        alternatives=kept,
        skyline_indices=skyline,
        characteristics=characteristics,
        discarded_by_constraints=discarded,
    )


class TestLazyGeneration:
    def test_generate_matches_generate_iter(self, small_purchases, make_config):
        config = make_config(pattern_budget=2)
        eager = AlternativeGenerator(default_palette(), configuration=config)
        lazy = AlternativeGenerator(default_palette(), configuration=config)
        eager_alts = eager.generate(small_purchases)
        lazy_alts = list(lazy.generate_iter(small_purchases))
        assert [a.label for a in eager_alts] == [a.label for a in lazy_alts]
        assert [a.pattern_names for a in eager_alts] == [a.pattern_names for a in lazy_alts]
        assert [a.flow.signature() for a in eager_alts] == [
            a.flow.signature() for a in lazy_alts
        ]

    def test_generate_iter_is_genuinely_lazy(self, small_purchases, make_config):
        config = make_config(pattern_budget=2)
        generator = AlternativeGenerator(default_palette(), configuration=config)
        total = {"calls": 0}
        original = generator._apply_combination
        original_prefixed = generator._apply_combination_prefixed

        def counting(flow, combo):
            total["calls"] += 1
            return original(flow, combo)

        def counting_prefixed(flow, combo, stack):
            total["calls"] += 1
            return original_prefixed(flow, combo, stack)

        generator._apply_combination = counting
        generator._apply_combination_prefixed = counting_prefixed
        full = list(generator.generate_iter(small_purchases))
        full_calls = total["calls"]
        assert len(full) > 5

        total["calls"] = 0
        stream = generator.generate_iter(small_purchases)
        next(stream)
        assert 0 < total["calls"] < full_calls / 2

    def test_generate_iter_respects_max_alternatives(self, small_purchases, make_config):
        config = make_config(pattern_budget=2, max_alternatives=3)
        generator = AlternativeGenerator(default_palette(), configuration=config)
        alternatives = list(generator.generate_iter(small_purchases))
        assert len(alternatives) == 3
        assert [a.label for a in alternatives] == ["ETL Flow 1", "ETL Flow 2", "ETL Flow 3"]

    def test_labels_follow_enumeration_order(self, small_purchases, make_config):
        generator = AlternativeGenerator(default_palette(), configuration=make_config())
        for index, alternative in enumerate(generator.generate_iter(small_purchases)):
            assert alternative.label == f"ETL Flow {index + 1}"


class TestStreamingEvaluator:
    def _alternatives(self, flow, count=6):
        return [AlternativeFlow(flow=flow.copy(name=f"alt_{i}")) for i in range(count)]

    def test_stream_preserves_input_order(self, linear_flow, fast_estimator):
        evaluator = ParallelEvaluator(estimator=fast_estimator, workers=4)
        alternatives = self._alternatives(linear_flow, count=10)
        streamed = list(evaluator.evaluate_stream(iter(alternatives), batch_size=3))
        assert streamed == alternatives
        assert all(alt.profile is not None for alt in streamed)

    def test_stream_consumes_input_lazily(self, linear_flow, fast_estimator):
        evaluator = ParallelEvaluator(estimator=fast_estimator, workers=2)
        alternatives = self._alternatives(linear_flow, count=12)
        pulled = {"count": 0}

        def producer():
            for alternative in alternatives:
                pulled["count"] += 1
                yield alternative

        stream = evaluator.evaluate_stream(producer(), batch_size=2)
        first = next(stream)
        assert first is alternatives[0]
        assert pulled["count"] < len(alternatives)
        rest = list(stream)
        assert pulled["count"] == len(alternatives)
        assert [first, *rest] == alternatives

    def test_stream_matches_batch_evaluate(self, linear_flow):
        estimator = QualityEstimator(settings=EstimationSettings(simulation_runs=1, seed=3))
        batch = ParallelEvaluator(estimator=estimator, workers=1).evaluate(
            self._alternatives(linear_flow)
        )
        streamed = list(
            ParallelEvaluator(estimator=estimator, workers=3).evaluate_stream(
                self._alternatives(linear_flow)
            )
        )
        for expected, got in zip(batch, streamed):
            assert expected.profile.scores == got.profile.scores

    def test_stream_rejects_invalid_batch_size_eagerly(self, linear_flow, fast_estimator):
        evaluator = ParallelEvaluator(estimator=fast_estimator, workers=2)
        with pytest.raises(ValueError):
            evaluator.evaluate_stream([], batch_size=0)  # raises at call time

    def test_empty_stream_yields_nothing(self, fast_estimator):
        evaluator = ParallelEvaluator(estimator=fast_estimator, workers=4)
        assert list(evaluator.evaluate_stream(iter([]))) == []
        assert evaluator.evaluate([]) == []

    def test_batch_size_bounds_inflight_below_worker_count(
        self, linear_flow, fast_estimator
    ):
        evaluator = ParallelEvaluator(estimator=fast_estimator, workers=8)
        alternatives = self._alternatives(linear_flow, count=6)
        pulled = {"count": 0}

        def producer():
            for alternative in alternatives:
                pulled["count"] += 1
                yield alternative

        stream = evaluator.evaluate_stream(producer(), batch_size=2)
        next(stream)
        # the in-flight window is batch_size, not the (larger) worker count
        assert pulled["count"] <= 3
        assert list(stream) == alternatives[1:]

    def test_workers_one_streams_sequentially(self, linear_flow, fast_estimator):
        evaluator = ParallelEvaluator(estimator=fast_estimator, workers=1)
        alternatives = self._alternatives(linear_flow, count=3)
        assert list(evaluator.evaluate_stream(iter(alternatives))) == alternatives

    @pytest.mark.slow
    def test_process_backend_matches_sequential(self, linear_flow):
        estimator = QualityEstimator(settings=EstimationSettings(simulation_runs=1, seed=3))
        sequential = ParallelEvaluator(estimator=estimator, workers=1).evaluate(
            self._alternatives(linear_flow, count=4)
        )
        procs = ParallelEvaluator(estimator=estimator, workers=2, backend="process")
        parallel = procs.evaluate(self._alternatives(linear_flow, count=4))
        for s, p in zip(sequential, parallel):
            assert s.profile.scores == p.profile.scores

    @pytest.mark.slow
    def test_process_backend_stream_fills_parent_cache(self, linear_flow):
        from repro.quality.estimator import ProfileCache

        cache = ProfileCache()
        estimator = QualityEstimator(
            settings=EstimationSettings(simulation_runs=1, seed=3), cache=cache
        )
        evaluator = ParallelEvaluator(estimator=estimator, workers=2, backend="process")
        first = list(evaluator.evaluate_stream(self._alternatives(linear_flow, count=3)))
        assert all(alt.profile is not None for alt in first)
        assert cache.stats.misses == 3
        # the parent process inserted the workers' results: re-streaming
        # identical flows is served from the memo
        second = list(evaluator.evaluate_stream(self._alternatives(linear_flow, count=3)))
        assert cache.stats.hits == 3
        for a, b in zip(first, second):
            assert a.profile.scores == b.profile.scores


class TestStreamingPlanEquivalence:
    def test_plan_matches_eager_pipeline(self, small_purchases, make_planner):
        eager_planner = make_planner(cache_profiles=False)
        streaming_planner = make_planner()
        eager = _eager_plan(eager_planner, small_purchases)
        streaming = streaming_planner.plan(small_purchases)

        assert json.dumps(streaming.summary(), sort_keys=True) == json.dumps(
            eager.summary(), sort_keys=True
        )
        assert [a.label for a in streaming.alternatives] == [
            a.label for a in eager.alternatives
        ]
        for s, e in zip(streaming.alternatives, eager.alternatives):
            assert s.profile.scores == e.profile.scores
        assert streaming.skyline_indices == eager.skyline_indices

    def test_parallel_streaming_matches_sequential(self, small_purchases, make_planner):
        sequential = make_planner().plan(small_purchases)
        parallel = make_planner(parallel_workers=4, eval_batch_size=4).plan(small_purchases)
        assert sequential.summary() == parallel.summary()
        for s, p in zip(sequential.alternatives, parallel.alternatives):
            assert s.profile.scores == p.profile.scores


class TestBeamScreening:
    def test_wide_beam_reproduces_unscreened_results(self, small_purchases, make_planner):
        unscreened = make_planner().plan(small_purchases)
        screened = make_planner(screening_beam=10_000).plan(small_purchases)
        assert screened.summary() == unscreened.summary()
        assert [a.label for a in screened.alternatives] == [
            a.label for a in unscreened.alternatives
        ]
        for s, u in zip(screened.alternatives, unscreened.alternatives):
            assert s.profile.scores == u.profile.scores

    def test_narrow_beam_keeps_a_subset_with_full_profiles(
        self, small_purchases, make_planner
    ):
        unscreened = make_planner().plan(small_purchases)
        screened = make_planner(screening_beam=3).plan(small_purchases)
        assert len(screened.alternatives) <= 3
        all_labels = {a.label for a in unscreened.alternatives}
        assert {a.label for a in screened.alternatives} <= all_labels
        # survivors carry full (simulated) profiles, not the static screen
        for alternative in screened.alternatives:
            assert "process_cycle_time_ms" in alternative.profile.values

    def test_beam_survivors_are_the_statically_best(self, small_purchases, make_planner):
        planner = make_planner(screening_beam=3)
        static = planner.screening_estimator
        assert static.settings.use_simulation is False
        generated = make_planner().generate_alternatives(small_purchases)
        characteristics = tuple(planner.configuration.skyline_characteristics)
        static_scores = {
            alt.label: sum(
                static.evaluate_uncached(alt.flow).score(c) for c in characteristics
            )
            for alt in generated
        }
        expected = {
            label
            for label, _ in sorted(static_scores.items(), key=lambda kv: -kv[1])[:3]
        }
        screened = planner.plan(small_purchases)
        assert {a.label for a in screened.alternatives} == expected

    def test_screening_configuration_validation(self):
        with pytest.raises(ValueError):
            ProcessingConfiguration(screening_beam=0)
        with pytest.raises(ValueError):
            ProcessingConfiguration(eval_batch_size=0)


class TestSessionCaching:
    def test_cache_hits_accumulate_across_iterations(self, small_purchases, make_config):
        session = RedesignSession(
            small_purchases, configuration=make_config(pattern_budget=2)
        )
        session.iterate()
        first = session.cache_stats()
        assert first["hits"] == 0
        assert first["misses"] == first["lookups"] > 0

        session.select_best(QualityCharacteristic.PERFORMANCE)
        session.iterate()
        second = session.cache_stats()
        # iteration 2's baseline is the flow adopted in iteration 1: a hit
        assert second["hits"] >= 1
        assert second["misses"] + second["hits"] == second["lookups"]

    def test_replanning_is_served_from_the_cache(self, small_purchases, seeded_planner):
        first = seeded_planner.plan(small_purchases)
        stats_after_first = dict(seeded_planner.profile_cache.stats.as_dict())
        second = seeded_planner.plan(small_purchases)
        stats_after_second = seeded_planner.profile_cache.stats.as_dict()
        # the re-plan re-generates the same flows; every profile is a hit
        assert stats_after_second["misses"] == stats_after_first["misses"]
        assert stats_after_second["hits"] == stats_after_first["hits"] + len(
            first.alternatives
        ) + 1  # +1 for the baseline
        assert second.summary() == first.summary()
        for a, b in zip(first.alternatives, second.alternatives):
            assert a.profile.scores == b.profile.scores

    def test_cache_can_be_disabled(self, small_purchases, make_planner, make_config):
        planner = make_planner(cache_profiles=False)
        assert planner.profile_cache is None
        session = RedesignSession(
            small_purchases, configuration=make_config(cache_profiles=False)
        )
        assert session.cache_stats() == {}
        result = planner.plan(small_purchases)
        assert result.alternatives


class TestBestFor:
    def test_best_for_skips_unevaluated_alternatives(self, small_purchases, seeded_planner):
        result = seeded_planner.plan(small_purchases)
        unevaluated = AlternativeFlow(flow=small_purchases.copy(), label="unscored")
        result.alternatives.append(unevaluated)
        best = result.best_for(QualityCharacteristic.PERFORMANCE)
        assert best is not unevaluated
        assert best.profile is not None

    def test_best_for_raises_when_nothing_evaluated(self, small_purchases):
        result = PlanningResult(
            initial_flow=small_purchases,
            baseline_profile=None,
            alternatives=[AlternativeFlow(flow=small_purchases.copy())],
        )
        with pytest.raises(ValueError):
            result.best_for(QualityCharacteristic.PERFORMANCE)

    def test_best_for_raises_without_alternatives(self, small_purchases):
        result = PlanningResult(initial_flow=small_purchases, baseline_profile=None)
        with pytest.raises(ValueError):
            result.best_for(QualityCharacteristic.PERFORMANCE)
