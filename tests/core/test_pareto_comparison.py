"""Tests for the Pareto skyline and the baseline comparison (Fig. 4 / Fig. 5 data)."""

import pytest

from repro.core.comparison import compare_profiles
from repro.core.pareto import dominance_counts, pareto_front, pareto_front_profiles
from repro.quality.composite import QualityProfile
from repro.quality.framework import MeasureValue, QualityCharacteristic


def _profile(name, perf, dq, rel):
    profile = QualityProfile(flow_name=name)
    profile.scores[QualityCharacteristic.PERFORMANCE] = perf
    profile.scores[QualityCharacteristic.DATA_QUALITY] = dq
    profile.scores[QualityCharacteristic.RELIABILITY] = rel
    return profile


CHARS = (
    QualityCharacteristic.PERFORMANCE,
    QualityCharacteristic.DATA_QUALITY,
    QualityCharacteristic.RELIABILITY,
)


class TestParetoFront:
    def test_empty(self):
        assert pareto_front([]) == []

    def test_single_point(self):
        assert pareto_front([(1.0, 2.0)]) == [0]

    def test_dominated_point_removed(self):
        # point 1 dominates point 0 on both coordinates
        points = [(1.0, 1.0), (2.0, 2.0)]
        assert pareto_front(points) == [1]

    def test_paper_rule_same_or_better_everywhere_and_strictly_better_once(self):
        # ETL1 vs ETL2: same performance and data quality, better reliability
        etl1 = (50.0, 60.0, 40.0)
        etl2 = (50.0, 60.0, 55.0)
        assert pareto_front([etl1, etl2]) == [1]

    def test_incomparable_points_all_kept(self):
        points = [(1.0, 5.0), (5.0, 1.0), (3.0, 3.0)]
        assert pareto_front(points) == [0, 1, 2]

    def test_duplicates_are_kept(self):
        points = [(2.0, 2.0), (2.0, 2.0), (1.0, 1.0)]
        assert pareto_front(points) == [0, 1]

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            pareto_front([1.0, 2.0])  # type: ignore[list-item]

    def test_three_dimensions(self):
        points = [
            (1.0, 1.0, 1.0),
            (2.0, 1.0, 1.0),
            (1.0, 2.0, 1.0),
            (0.5, 0.5, 0.5),
        ]
        assert pareto_front(points) == [1, 2]

    def test_profiles_wrapper(self):
        profiles = [
            _profile("a", 50, 50, 50),
            _profile("b", 60, 50, 50),
            _profile("c", 10, 90, 10),
        ]
        assert pareto_front_profiles(profiles, CHARS) == [1, 2]

    def test_dominance_counts(self):
        profiles = [
            _profile("a", 50, 50, 50),
            _profile("b", 60, 60, 60),
            _profile("c", 70, 70, 70),
        ]
        assert dominance_counts(profiles, CHARS) == [2, 1, 0]


class TestComparison:
    def _profiles(self):
        baseline = QualityProfile(flow_name="initial")
        baseline.scores[QualityCharacteristic.PERFORMANCE] = 50.0
        baseline.scores[QualityCharacteristic.RELIABILITY] = 40.0
        baseline.values["process_cycle_time_ms"] = MeasureValue(
            "process_cycle_time_ms", QualityCharacteristic.PERFORMANCE, 1_000.0, 0.5, False, "ms"
        )
        baseline.values["success_rate"] = MeasureValue(
            "success_rate", QualityCharacteristic.RELIABILITY, 0.8, 0.8, True
        )

        alternative = QualityProfile(flow_name="alt")
        alternative.scores[QualityCharacteristic.PERFORMANCE] = 60.0
        alternative.scores[QualityCharacteristic.RELIABILITY] = 36.0
        alternative.values["process_cycle_time_ms"] = MeasureValue(
            "process_cycle_time_ms", QualityCharacteristic.PERFORMANCE, 800.0, 0.6, False, "ms"
        )
        alternative.values["success_rate"] = MeasureValue(
            "success_rate", QualityCharacteristic.RELIABILITY, 0.72, 0.72, True
        )
        return alternative, baseline

    def test_characteristic_changes(self):
        alternative, baseline = self._profiles()
        comparison = compare_profiles(alternative, baseline)
        assert comparison.change(QualityCharacteristic.PERFORMANCE) == pytest.approx(0.2)
        assert comparison.change(QualityCharacteristic.RELIABILITY) == pytest.approx(-0.1)
        assert comparison.improved_characteristics() == [QualityCharacteristic.PERFORMANCE]
        assert comparison.degraded_characteristics() == [QualityCharacteristic.RELIABILITY]

    def test_measure_drilldown(self):
        alternative, baseline = self._profiles()
        comparison = compare_profiles(alternative, baseline)
        details = comparison.expand(QualityCharacteristic.PERFORMANCE)
        assert len(details) == 1
        cycle = details[0]
        assert cycle.measure == "process_cycle_time_ms"
        assert cycle.baseline_value == 1_000.0
        assert cycle.new_value == 800.0
        # 20% faster on a lower-is-better measure is a +20% improvement
        assert cycle.relative_improvement == pytest.approx(0.2)

    def test_reliability_drilldown_shows_degradation(self):
        alternative, baseline = self._profiles()
        comparison = compare_profiles(alternative, baseline)
        success = comparison.expand(QualityCharacteristic.RELIABILITY)[0]
        assert success.relative_improvement == pytest.approx(-0.1)

    def test_missing_baseline_measures_are_skipped(self):
        alternative, baseline = self._profiles()
        del baseline.values["success_rate"]
        comparison = compare_profiles(alternative, baseline)
        assert "success_rate" not in comparison.measure_changes

    def test_to_dict(self):
        alternative, baseline = self._profiles()
        data = compare_profiles(alternative, baseline).to_dict()
        assert data["flow"] == "alt"
        assert data["baseline"] == "initial"
        assert "performance" in data["characteristics"]
        assert "process_cycle_time_ms" in data["measures"]
