"""Chunked streaming evaluation: batched lookups, preserved semantics.

The evaluator now resolves parent-side cache lookups in one ``get_many``
per window refill and groups process-pool tasks into contiguous chunks
(each resolved worker-side in one batched read-through pass).  These
tests pin the invariants the rewrite must keep: input order, exact
hit/miss accounting, and results identical to sequential evaluation --
with cache hits interleaving the chunks arbitrarily.
"""

from __future__ import annotations

import pytest

from repro.core.alternatives import AlternativeFlow
from repro.core.evaluator import ParallelEvaluator
from repro.quality.estimator import EstimationSettings, ProfileCache, QualityEstimator


def _alternatives(flow, count):
    return [AlternativeFlow(flow=flow.copy(name=f"alt_{i}")) for i in range(count)]


def _cached_estimator() -> QualityEstimator:
    return QualityEstimator(
        settings=EstimationSettings(simulation_runs=1, seed=3), cache=ProfileCache()
    )


class TestInterleavedHits:
    def test_order_preserved_when_hits_break_the_chunks(self, linear_flow):
        """Pre-warm a scattered subset; hits must not reorder the stream."""
        estimator = _cached_estimator()
        warmup = _alternatives(linear_flow, 9)
        # warm alternating candidates (distinct flows alternate by name...
        # but fingerprints ignore names, so *every* alt here shares one
        # profile; warm via a distinct estimator to keep stats clean)
        seeder = QualityEstimator(settings=estimator.settings, cache=estimator.cache)
        seeder.evaluate(warmup[0].flow)

        evaluator = ParallelEvaluator(estimator=estimator, workers=3)
        streamed = list(evaluator.evaluate_stream(iter(warmup), batch_size=4))
        assert streamed == warmup
        assert all(alt.profile is not None for alt in streamed)
        # every lookup hit (structurally identical flows share one entry)
        assert estimator.cache.stats.hits >= len(warmup)

    def test_batched_window_counts_one_lookup_and_simulates_once(
        self, linear_flow, monkeypatch
    ):
        estimator = _cached_estimator()
        computed = {"count": 0}
        real = estimator.evaluate_uncached

        def counting(flow, archive=None):
            computed["count"] += 1
            return real(flow, archive)

        monkeypatch.setattr(estimator, "evaluate_uncached", counting)
        alternatives = _alternatives(linear_flow, 6)
        evaluator = ParallelEvaluator(estimator=estimator, workers=1)
        list(evaluator.evaluate_stream(iter(alternatives), batch_size=4))
        stats = estimator.cache.stats
        # 6 candidates -> 6 logical lookups exactly (one per candidate).
        # All six share one fingerprint: the first window's 4 lookups all
        # miss (batched before anything was computed), the second window's
        # 2 hit -- but the window-local memo keeps it one simulation.
        assert stats.lookups == 6
        assert stats.misses == 4 and stats.hits == 2
        assert computed["count"] == 1

    def test_sequential_windowing_matches_unwindowed_results(self, linear_flow):
        baseline = ParallelEvaluator(estimator=_cached_estimator(), workers=1).evaluate(
            _alternatives(linear_flow, 5)
        )
        windowed = list(
            ParallelEvaluator(estimator=_cached_estimator(), workers=1).evaluate_stream(
                iter(_alternatives(linear_flow, 5)), batch_size=2
            )
        )
        for expected, got in zip(baseline, windowed):
            assert expected.profile.scores == got.profile.scores


@pytest.mark.slow
class TestPooledChunks:
    def test_chunked_process_pool_matches_sequential(self, linear_flow, tmp_path):
        """eval window 16 with 2 workers -> chunks of 4 per task."""
        from repro.cache import DiskProfileCache, TieredProfileCache

        sequential = ParallelEvaluator(estimator=_cached_estimator(), workers=1).evaluate(
            _alternatives(linear_flow, 10)
        )
        tiered = TieredProfileCache(ProfileCache(), DiskProfileCache(tmp_path))
        estimator = QualityEstimator(
            settings=EstimationSettings(simulation_runs=1, seed=3), cache=tiered
        )
        pooled = ParallelEvaluator(estimator=estimator, workers=2, backend="process")
        streamed = list(
            pooled.evaluate_stream(iter(_alternatives(linear_flow, 10)), batch_size=16)
        )
        assert [a.flow.name for a in streamed] == [f"alt_{i}" for i in range(10)]
        for expected, got in zip(sequential, streamed):
            assert expected.profile.scores == got.profile.scores
        # the parent published its batch on teardown
        assert len(tiered.disk) > 0
