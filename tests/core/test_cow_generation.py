"""Tests of copy-on-write alternative generation and the new planner knobs.

Covers the ``copy_mode`` gate (deep/cow equivalence of the generated
space), the annotation-aware dedup regression (graph-level patterns must
survive), :class:`GenerationStats`, the ``backend`` knob, and process
workers receiving COW flows by pickle.
"""

from __future__ import annotations

import pytest

from repro.core.alternatives import AlternativeGenerator, GenerationStats
from repro.core.configuration import ProcessingConfiguration
from repro.core.evaluator import ParallelEvaluator
from repro.core.policies import ExhaustivePolicy, HeuristicPolicy
from repro.etl.validation import is_valid
from repro.patterns.registry import default_palette
from repro.quality.estimator import EstimationSettings, QualityEstimator


def _generate(flow, mode, **overrides):
    defaults = dict(pattern_budget=2, max_points_per_pattern=2, copy_mode=mode)
    defaults.update(overrides)
    config = ProcessingConfiguration(**defaults)
    generator = AlternativeGenerator(default_palette(), HeuristicPolicy(), config)
    return generator.generate(flow), generator


class TestCowDeepEquivalence:
    def test_identical_alternative_streams(self, small_purchases):
        deep, _ = _generate(small_purchases, "deep")
        cow, _ = _generate(small_purchases, "cow")
        assert [a.label for a in deep] == [a.label for a in cow]
        assert [a.pattern_names for a in deep] == [a.pattern_names for a in cow]
        assert [a.flow.signature() for a in deep] == [a.flow.signature() for a in cow]

    def test_identical_with_budget_three(self, small_purchases):
        deep, _ = _generate(small_purchases, "deep", pattern_budget=3, max_alternatives=300)
        cow, _ = _generate(small_purchases, "cow", pattern_budget=3, max_alternatives=300)
        assert [a.flow.signature() for a in deep] == [a.flow.signature() for a in cow]

    def test_cow_alternatives_are_valid_and_self_contained(self, small_purchases):
        cow, _ = _generate(small_purchases, "cow")
        for alternative in cow:
            assert is_valid(alternative.flow)
        # mutating one alternative must not bleed into any other
        first = cow[0].flow
        target = first.operation_ids()[0]
        first.mutable_operation(target).config["marker"] = True
        assert "marker" not in small_purchases.operation(target).config
        for other in cow[1:]:
            if target in other.flow:
                assert "marker" not in other.flow.operation(target).config

    def test_initial_flow_untouched_by_cow_generation(self, small_purchases):
        before = small_purchases.signature()
        _generate(small_purchases, "cow")
        assert small_purchases.signature() == before

    def test_caller_flow_never_payload_aliased(self, small_purchases):
        # After COW generation, the seed idiom of mutating the caller's
        # deep flow directly must not bleed into any returned alternative.
        cow, _ = _generate(small_purchases, "cow")
        target = small_purchases.operation_ids()[0]
        assert all(
            alt.flow.operation(target) is not small_purchases.operation(target)
            for alt in cow
            if target in alt.flow
        )
        small_purchases.operation(target).config["marker"] = "caller-write"
        for alt in cow:
            if target in alt.flow:
                assert "marker" not in alt.flow.operation(target).config

    def test_interleaved_lazy_runs_keep_separate_state(self, small_purchases, tpch_flow):
        # Two partially consumed generate_iter runs on the same generator
        # must each validate against their own base flow.
        config = ProcessingConfiguration(
            pattern_budget=2, max_points_per_pattern=2, copy_mode="cow"
        )
        generator = AlternativeGenerator(default_palette(), HeuristicPolicy(), config)
        first = generator.generate_iter(small_purchases)
        second = generator.generate_iter(tpch_flow)
        interleaved = []
        for _ in range(5):
            interleaved.append(next(first))
            interleaved.append(next(second))
        interleaved.extend(first)
        interleaved.extend(second)
        assert all(is_valid(alt.flow) for alt in interleaved)
        solo = [a.flow.signature() for a in _generate(small_purchases, "cow")[0]]
        a_sigs = [
            a.flow.signature()
            for a in interleaved
            if a.flow.name.startswith(small_purchases.name)
        ]
        assert a_sigs == solo

    def test_planner_plan_equivalent_across_modes(self, small_purchases, make_planner):
        results = {}
        for mode in ("deep", "cow"):
            planner = make_planner(copy_mode=mode)
            result = planner.plan(small_purchases)
            results[mode] = result
        deep, cow = results["deep"], results["cow"]
        assert [a.label for a in deep.alternatives] == [a.label for a in cow.alternatives]
        assert [a.flow.signature() for a in deep.alternatives] == [
            a.flow.signature() for a in cow.alternatives
        ]
        assert deep.skyline_indices == cow.skyline_indices
        for d, c in zip(deep.alternatives, cow.alternatives):
            assert d.profile.scores == c.profile.scores


class TestGraphLevelDedupRegression:
    """Annotation-only patterns must survive signature deduplication."""

    def test_graph_level_pattern_survives(self, small_purchases):
        config = ProcessingConfiguration(
            pattern_budget=1,
            max_points_per_pattern=2,
            pattern_names=("EncryptDataFlow",),
        )
        generator = AlternativeGenerator(default_palette(), ExhaustivePolicy(), config)
        alternatives = generator.generate(small_purchases)
        assert len(alternatives) == 1
        assert alternatives[0].pattern_names == ("EncryptDataFlow",)
        assert alternatives[0].flow.annotations.get("encryption") is True

    def test_structure_plus_annotation_combo_not_pruned(self, small_purchases):
        config = ProcessingConfiguration(
            pattern_budget=2,
            max_points_per_pattern=1,
            pattern_names=("AddCheckpoint", "EncryptDataFlow"),
        )
        generator = AlternativeGenerator(default_palette(), ExhaustivePolicy(), config)
        names = {alt.pattern_names for alt in generator.generate(small_purchases)}
        assert ("AddCheckpoint",) in names
        assert ("EncryptDataFlow",) in names
        assert ("AddCheckpoint", "EncryptDataFlow") in names

    def test_same_annotation_twice_is_still_pruned(self, small_purchases):
        # two alternatives with identical structure AND identical
        # annotations remain duplicates
        config = ProcessingConfiguration(
            pattern_budget=2,
            max_points_per_pattern=4,
            pattern_names=("EncryptDataFlow",),
        )
        generator = AlternativeGenerator(default_palette(), ExhaustivePolicy(), config)
        assert len(generator.generate(small_purchases)) == 1


class TestGenerationStats:
    def test_stats_filled_in(self, small_purchases):
        _, generator = _generate(small_purchases, "cow")
        stats = generator.last_stats
        assert isinstance(stats, GenerationStats)
        assert stats.copy_mode == "cow"
        assert stats.yielded > 0
        assert stats.combinations_tried >= stats.yielded
        assert stats.wall_seconds > 0
        assert stats.candidates_per_second > 0
        payload = stats.as_dict()
        assert payload["yielded"] == stats.yielded

    def test_stats_track_duplicates(self, small_purchases):
        _, generator = _generate(
            small_purchases, "cow", pattern_budget=2, max_points_per_pattern=4
        )
        stats = generator.last_stats
        assert stats.duplicates_pruned >= 0
        assert stats.combinations_tried == (
            stats.yielded + stats.duplicates_pruned + stats.invalid_discarded
        )


class TestBackendKnob:
    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            ProcessingConfiguration(backend="greenlet")

    def test_invalid_copy_mode_rejected(self):
        with pytest.raises(ValueError):
            ProcessingConfiguration(copy_mode="shallow")

    def test_planner_wires_backend_through(self, make_planner):
        planner = make_planner(backend="process", parallel_workers=2)
        assert planner.evaluator.backend == "process"
        assert planner.screening_evaluator.backend == "process"

    def test_default_backend_is_thread(self, make_planner):
        planner = make_planner()
        assert planner.evaluator.backend == "thread"

    @pytest.mark.slow
    def test_process_backend_evaluates_cow_alternatives(self, small_purchases):
        # COW flows must pickle (materialize-on-pickle) into pool workers
        alternatives, _ = _generate(small_purchases, "cow", max_alternatives=4)
        estimator = QualityEstimator(settings=EstimationSettings(simulation_runs=1, seed=3))
        evaluator = ParallelEvaluator(estimator=estimator, workers=2, backend="process")
        evaluated = evaluator.evaluate(alternatives)
        assert all(alt.profile is not None for alt in evaluated)

    @pytest.mark.slow
    def test_planner_process_backend_end_to_end(self, small_purchases, make_planner):
        planner = make_planner(
            backend="process", parallel_workers=2, copy_mode="cow", max_alternatives=6
        )
        result = planner.plan(small_purchases)
        assert result.alternatives
        assert all(alt.profile is not None for alt in result.alternatives)
