"""Setup shim for environments without the ``wheel`` package.

The canonical metadata lives in ``pyproject.toml``; this file only enables
``python setup.py develop`` / legacy editable installs on machines where
PEP 660 editable wheels cannot be built (no ``wheel`` package, offline).
"""

from setuptools import setup

setup()
