"""Setup shim for environments without the ``wheel`` package.

This file enables ``python setup.py develop`` / legacy editable installs
on machines where PEP 660 editable wheels cannot be built (no ``wheel``
package, offline).

The optional extras gate the native dataframe backends of the execution
layer (``repro.exec``): the core install runs every flow on the
pure-Python ``local`` backend, while ``pip install
poiesis-repro[pandas]`` / ``[polars]`` unlocks the matching
:class:`~repro.exec.backends.PandasBackend` /
:class:`~repro.exec.backends.PolarsBackend` and the differential
conformance arms in ``tests/exec/test_backend_equivalence.py``.
"""

from setuptools import setup

setup(
    extras_require={
        "pandas": ["pandas>=2.0"],
        "polars": ["polars>=1.0"],
        "backends": ["pandas>=2.0", "polars>=1.0"],
    },
)
